"""Tests for the ReLU and absolute-value reward functions (Section 6.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PerformanceObjective, absolute_reward, relu_reward


def objective(metric="latency", target=10.0, beta=-1.0):
    return PerformanceObjective(metric=metric, target=target, beta=beta)


class TestPerformanceObjective:
    def test_overshoot(self):
        obj = objective(target=10.0)
        assert obj.overshoot({"latency": 15.0}) == pytest.approx(0.5)
        assert obj.overshoot({"latency": 5.0}) == pytest.approx(-0.5)

    def test_missing_metric(self):
        with pytest.raises(KeyError):
            objective().overshoot({"throughput": 1.0})

    def test_target_must_be_positive(self):
        with pytest.raises(ValueError):
            objective(target=0.0)

    def test_beta_must_be_negative(self):
        with pytest.raises(ValueError):
            PerformanceObjective("latency", 10.0, beta=0.5)
        with pytest.raises(ValueError):
            PerformanceObjective("latency", 10.0, beta=0.0)


class TestReluReward:
    def test_no_penalty_at_or_under_target(self):
        """The single-sided property: over-achievers are never penalized."""
        reward = relu_reward([objective(target=10.0)])
        assert reward(0.8, {"latency": 10.0}) == pytest.approx(0.8)
        assert reward(0.8, {"latency": 5.0}) == pytest.approx(0.8)
        assert reward(0.8, {"latency": 0.1}) == pytest.approx(0.8)

    def test_linear_penalty_above_target(self):
        reward = relu_reward([objective(target=10.0, beta=-2.0)])
        assert reward(0.8, {"latency": 15.0}) == pytest.approx(0.8 - 2.0 * 0.5)

    def test_scale_invariance(self):
        """Normalizing by T0 makes the reward unit-free."""
        r_ms = relu_reward([objective(target=10.0)])(0.5, {"latency": 12.0})
        r_us = relu_reward([objective(target=10_000.0)])(0.5, {"latency": 12_000.0})
        assert r_ms == pytest.approx(r_us)

    def test_multiple_objectives_sum(self):
        reward = relu_reward(
            [
                objective("latency", 10.0, beta=-1.0),
                objective("model_size", 100.0, beta=-0.5),
            ]
        )
        value = reward(1.0, {"latency": 20.0, "model_size": 120.0})
        assert value == pytest.approx(1.0 - 1.0 * 1.0 - 0.5 * 0.2)


class TestAbsoluteReward:
    def test_penalizes_both_sides(self):
        """TuNAS' flaw: over-achievers ARE penalized."""
        reward = absolute_reward([objective(target=10.0)])
        assert reward(0.8, {"latency": 5.0}) < 0.8
        assert reward(0.8, {"latency": 15.0}) < 0.8

    def test_equal_at_target(self):
        relu = relu_reward([objective()])
        absv = absolute_reward([objective()])
        metrics = {"latency": 10.0}
        assert relu(0.7, metrics) == pytest.approx(absv(0.7, metrics))

    @given(st.floats(0.01, 100.0))
    @settings(max_examples=50, deadline=None)
    def test_relu_geq_absolute_everywhere(self, latency):
        """For beta < 0, the ReLU reward never under-scores vs absolute."""
        relu = relu_reward([objective(target=10.0)])
        absv = absolute_reward([objective(target=10.0)])
        metrics = {"latency": latency}
        assert relu(0.5, metrics) >= absv(0.5, metrics) - 1e-12

    @given(st.floats(10.0, 100.0))
    @settings(max_examples=50, deadline=None)
    def test_rewards_identical_above_target(self, latency):
        """Above target the two rewards agree — the single-objective tie."""
        relu = relu_reward([objective(target=10.0)])
        absv = absolute_reward([objective(target=10.0)])
        metrics = {"latency": latency}
        assert relu(0.5, metrics) == pytest.approx(absv(0.5, metrics))


class TestRewardFunctionApi:
    def test_invalid_kind(self):
        from repro.core.reward import RewardFunction

        with pytest.raises(ValueError):
            RewardFunction([], kind="quadratic")

    def test_penalty_only(self):
        reward = relu_reward([objective(target=10.0, beta=-1.0)])
        assert reward.penalty_only({"latency": 20.0}) == pytest.approx(-1.0)

    def test_no_objectives_means_pure_quality(self):
        reward = relu_reward([])
        assert reward(0.9, {}) == pytest.approx(0.9)
