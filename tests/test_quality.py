"""Tests for the quality surrogates (calibrated to Table 3 anchors)."""

import dataclasses

import pytest

from repro.models import COATNET, COATNET_H, EFFICIENTNET_X, baseline_production_dlrm, dlrm_h
from repro.quality import (
    DlrmQualityModel,
    activation_bonus,
    capacity_quality,
    coatnet_quality,
    efficientnet_quality,
)


class TestCapacityQuality:
    def test_monotone_in_params(self):
        assert capacity_quality(1e8) > capacity_quality(1e7)

    def test_dataset_scaling(self):
        p = 3e8
        assert (
            capacity_quality(p, "large")
            > capacity_quality(p, "medium")
            > capacity_quality(p, "small")
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            capacity_quality(0.0)
        with pytest.raises(ValueError):
            capacity_quality(1e8, "jft3b")

    def test_activation_bonus_unknown(self):
        with pytest.raises(ValueError):
            activation_bonus("mish")


class TestCoatnetQuality:
    def test_table3_row1_baseline(self):
        assert coatnet_quality(COATNET["5"]) == pytest.approx(89.7, abs=0.1)

    def test_table3_row2_deeper_conv(self):
        cfg = COATNET["5"].with_deeper_conv(4)
        assert coatnet_quality(cfg) == pytest.approx(90.3, abs=0.1)

    def test_table3_row3_res_shrink(self):
        cfg = COATNET["5"].with_deeper_conv(4).with_resolution(160)
        assert coatnet_quality(cfg) == pytest.approx(88.9, abs=0.1)

    def test_table3_row4_squared_relu(self):
        assert coatnet_quality(COATNET_H["5"]) == pytest.approx(89.7, abs=0.1)

    def test_h_family_neutral_quality(self):
        """The paper's headline: H models are faster at neutral quality."""
        for idx in COATNET:
            delta = coatnet_quality(COATNET_H[idx]) - coatnet_quality(COATNET[idx])
            assert abs(delta) < 0.5

    def test_family_ordering(self):
        qualities = [coatnet_quality(COATNET[str(i)]) for i in range(6)]
        assert all(a < b for a, b in zip(qualities, qualities[1:]))

    def test_never_exceeds_dataset_ceiling(self):
        huge = dataclasses.replace(
            COATNET["5"], conv_depths=(2, 60), resolution=448
        )
        assert coatnet_quality(huge) <= 92.0


class TestEfficientnetQuality:
    def test_family_ordering(self):
        qualities = [
            efficientnet_quality(EFFICIENTNET_X[f"b{i}"]) for i in range(8)
        ]
        assert all(a < b for a, b in zip(qualities, qualities[1:]))

    def test_b0_range(self):
        q = efficientnet_quality(EFFICIENTNET_X["b0"])
        assert 70 < q < 85


class TestDlrmQuality:
    def test_baseline_anchor(self):
        base = baseline_production_dlrm()
        model = DlrmQualityModel(base)
        assert model.quality(base) == pytest.approx(80.0)

    def test_dlrm_h_gains_paper_delta(self):
        """Figure 8's caption: DLRM-H gains +0.02% quality."""
        base = baseline_production_dlrm()
        model = DlrmQualityModel(base)
        delta = model.quality(dlrm_h(base)) - model.quality(base)
        assert delta == pytest.approx(0.02, abs=0.01)

    def test_more_embedding_capacity_helps(self):
        base = baseline_production_dlrm()
        model = DlrmQualityModel(base)
        bigger = dataclasses.replace(
            base,
            tables=tuple(
                dataclasses.replace(t, width=t.width * 2) for t in base.tables
            ),
        )
        assert model.quality(bigger) > model.quality(base)

    def test_low_rank_discounts_generalization(self):
        base = baseline_production_dlrm()
        model = DlrmQualityModel(base)
        factored = dataclasses.replace(
            base, top=dataclasses.replace(base.top, low_rank=0.2)
        )
        assert model.quality(factored) < model.quality(base)

    def test_low_rank_above_half_is_free(self):
        """Ranks >= width/2 retain full effective capacity."""
        base = baseline_production_dlrm()
        model = DlrmQualityModel(base)
        mild = dataclasses.replace(
            base, top=dataclasses.replace(base.top, low_rank=0.6)
        )
        assert model.quality(mild) == pytest.approx(model.quality(base))
