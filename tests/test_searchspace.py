"""Tests for search-space primitives and the three concrete spaces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.searchspace import (
    Architecture,
    CHOICES_PER_BLOCK,
    CHOICES_PER_TFM_BLOCK,
    CnnSpaceConfig,
    Decision,
    DlrmSpaceConfig,
    SearchSpace,
    VitSpaceConfig,
    cnn_search_space,
    dlrm_search_space,
    hybrid_vit_search_space,
    per_block_cardinalities,
    table5_size_rows,
    vit_search_space,
)


class TestDecision:
    def test_basic(self):
        d = Decision("k", (3, 5, 7))
        assert d.num_choices == 3
        assert d.index_of(5) == 1

    def test_index_of_missing(self):
        with pytest.raises(ValueError):
            Decision("k", (3, 5)).index_of(7)

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError):
            Decision("k", ())

    def test_duplicate_choices_rejected(self):
        with pytest.raises(ValueError):
            Decision("k", (3, 3))


class TestArchitecture:
    def test_mapping_interface(self):
        a = Architecture({"x": 1, "y": "relu"})
        assert a["x"] == 1
        assert set(a) == {"x", "y"}
        assert len(a) == 2

    def test_equality_and_hash(self):
        a = Architecture({"x": 1})
        b = Architecture({"x": 1})
        assert a == b and hash(a) == hash(b)
        assert a != Architecture({"x": 2})

    def test_replaced(self):
        a = Architecture({"x": 1, "y": 2})
        b = a.replaced(y=3)
        assert b["y"] == 3 and a["y"] == 2


def tiny_space():
    return SearchSpace(
        "tiny",
        [Decision("a", (0, 1)), Decision("b", ("p", "q", "r"))],
    )


class TestSearchSpace:
    def test_cardinality(self):
        assert tiny_space().cardinality() == 6
        assert tiny_space().log10_size() == pytest.approx(np.log10(6))

    def test_sample_is_valid(self):
        space = tiny_space()
        arch = space.sample(np.random.default_rng(0))
        space.validate(arch)

    def test_sampling_covers_choices(self):
        space = tiny_space()
        rng = np.random.default_rng(1)
        seen = {space.sample(rng)["b"] for _ in range(100)}
        assert seen == {"p", "q", "r"}

    def test_validate_missing_decision(self):
        with pytest.raises(ValueError, match="missing"):
            tiny_space().validate(Architecture({"a": 0}))

    def test_validate_unknown_decision(self):
        with pytest.raises(ValueError, match="unknown"):
            tiny_space().validate(Architecture({"a": 0, "b": "p", "c": 1}))

    def test_validate_illegal_value(self):
        with pytest.raises(ValueError):
            tiny_space().validate(Architecture({"a": 5, "b": "p"}))

    def test_indices_roundtrip(self):
        space = tiny_space()
        arch = Architecture({"a": 1, "b": "r"})
        idx = space.indices_of(arch)
        assert list(idx) == [1, 2]
        assert space.architecture_from_indices(idx) == arch

    def test_indices_length_check(self):
        with pytest.raises(ValueError):
            tiny_space().architecture_from_indices([0])

    def test_duplicate_decision_names_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace("bad", [Decision("a", (0,)), Decision("a", (1, 2))])

    def test_decision_lookup(self):
        space = tiny_space()
        assert space.decision("a").num_choices == 2
        with pytest.raises(KeyError):
            space.decision("zzz")

    def test_default_architecture_is_valid(self):
        space = tiny_space()
        space.validate(space.default_architecture())

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_sample_always_valid(self, seed):
        space = cnn_search_space(CnnSpaceConfig(num_blocks=2))
        arch = space.sample(np.random.default_rng(seed))
        space.validate(arch)


class TestCnnSpace:
    def test_per_block_cardinality_matches_table5(self):
        assert CHOICES_PER_BLOCK == 302400

    def test_full_space_size(self):
        space = cnn_search_space(CnnSpaceConfig(num_blocks=7))
        expected = 302400**7 * 8
        assert space.cardinality() == expected

    def test_decision_count(self):
        space = cnn_search_space(CnnSpaceConfig(num_blocks=3))
        assert len(space) == 3 * 10 + 1  # 10 per block + resolution

    def test_no_resolution_option(self):
        space = cnn_search_space(CnnSpaceConfig(num_blocks=2, include_resolution=False))
        assert "resolution" not in space

    def test_default_architecture_is_baseline(self):
        space = cnn_search_space(CnnSpaceConfig(num_blocks=1))
        arch = space.default_architecture()
        assert arch["block0/depth_delta"] == 0
        assert arch["block0/width_delta"] == 0
        assert arch["block0/type"] == "mbconv"

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CnnSpaceConfig(num_blocks=0)

    def test_tagged_lookup(self):
        space = cnn_search_space(CnnSpaceConfig(num_blocks=2))
        assert len(space.decisions_tagged("activation")) == 2
        assert len(space.decisions_tagged("block0")) == 10


class TestDlrmSpace:
    def test_size_matches_paper_arithmetic(self):
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=150, num_dense_stacks=10))
        assert space.cardinality() == 7**300 * (7 * 10 * 10) ** 10

    def test_log10_near_282(self):
        space = dlrm_search_space()
        assert abs(space.log10_size() - 282.0) < 1.0

    def test_small_config(self):
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=2))
        assert len(space) == 2 * 2 + 2 * 3

    def test_vocab_optional(self):
        space = dlrm_search_space(
            DlrmSpaceConfig(num_tables=3, num_dense_stacks=1, search_vocab=False)
        )
        assert not space.decisions_tagged("vocab")

    def test_embedding_and_dense_tags(self):
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=3))
        assert len(space.decisions_tagged("embedding")) == 4
        assert len(space.decisions_tagged("dense")) == 9

    def test_default_is_baseline(self):
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=1, num_dense_stacks=1))
        arch = space.default_architecture()
        assert arch["emb0/width_delta"] == 0
        assert arch["emb0/vocab_scale"] == 1.0
        assert arch["dense0/low_rank"] == 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DlrmSpaceConfig(num_tables=0)


class TestVitSpace:
    def test_per_block_cardinality_matches_table5(self):
        assert CHOICES_PER_TFM_BLOCK == 17920

    def test_pure_transformer_size(self):
        space = vit_search_space(VitSpaceConfig(num_tfm_blocks=2))
        assert space.cardinality() == 17920**2

    def test_hybrid_size_matches_paper_formula(self):
        space = hybrid_vit_search_space()
        assert space.cardinality() == 17920**2 * 302400**2 * 7 * 21

    def test_hidden_sizes_are_multiples_of_64(self):
        space = vit_search_space(VitSpaceConfig(num_tfm_blocks=1))
        sizes = space.decision("tfm0/hidden_size").choices
        assert all(s % 64 == 0 for s in sizes)
        assert max(sizes) == 1024 and len(sizes) == 16

    def test_squared_relu_available(self):
        space = vit_search_space(VitSpaceConfig(num_tfm_blocks=1))
        assert "squared_relu" in space.decision("tfm0/activation").choices

    def test_hybrid_name(self):
        assert hybrid_vit_search_space().name == "hybrid_vit"
        assert vit_search_space().name == "vit"


class TestTable5Sizes:
    def test_all_rows_match_paper(self):
        rows = table5_size_rows()
        assert set(rows) == {"cnn", "dlrm", "vit", "hybrid_vit"}
        for row in rows.values():
            assert row.matches_paper_order, row

    def test_per_block_cardinalities(self):
        counts = per_block_cardinalities()
        assert counts["cnn_block"] == 302400
        assert counts["tfm_block"] == 17920
