"""Tests for the mixture super-network and the DARTS baseline."""

import numpy as np
import pytest

from repro.core import DartsConfig, DartsSearch
from repro.data import TwoStreamPipeline, VisionTaskConfig, VisionTeacher
from repro.nn import Tensor
from repro.supernet import (
    MixtureSuperNetwork,
    MixtureSupernetConfig,
    mixture_search_space,
)


def make_net(num_layers=2):
    return MixtureSuperNetwork(
        MixtureSupernetConfig(num_layers=num_layers, num_features=16, num_classes=4)
    )


def make_teacher(seed=0):
    return VisionTeacher(VisionTaskConfig(batch_size=32, seed=seed))


def uniform_probs(net):
    space = mixture_search_space(net.config)
    return {
        d.name: Tensor(np.full(d.num_choices, 1.0 / d.num_choices))
        for d in space.decisions
    }


class TestMixtureSupernet:
    def test_discrete_forward_shape(self):
        net = make_net()
        space = mixture_search_space(net.config)
        batch = make_teacher().next_batch()
        logits = net(space.default_architecture(), batch.inputs)
        assert logits.shape == (32, 4)

    def test_mixture_forward_shape(self):
        net = make_net()
        batch = make_teacher().next_batch()
        logits = net.forward_mixture(uniform_probs(net), batch.inputs)
        assert logits.shape == (32, 4)

    def test_onehot_mixture_matches_discrete(self):
        """A one-hot mixture reduces exactly to the discrete candidate."""
        net = make_net()
        space = mixture_search_space(net.config)
        arch = space.default_architecture().replaced(
            **{"layer0/width": 16, "layer0/activation": "swish"}
        )
        probs = {}
        for decision in space.decisions:
            onehot = np.zeros(decision.num_choices)
            onehot[decision.index_of(arch[decision.name])] = 1.0
            probs[decision.name] = Tensor(onehot)
        batch = make_teacher().next_batch()
        np.testing.assert_allclose(
            net.forward_mixture(probs, batch.inputs).data,
            net(arch, batch.inputs).data,
            atol=1e-10,
        )

    def test_mixture_gradients_reach_probabilities(self):
        net = make_net()
        space = mixture_search_space(net.config)
        alphas = {
            d.name: Tensor(np.zeros(d.num_choices), requires_grad=True)
            for d in space.decisions
        }
        probs = {name: alpha.softmax() for name, alpha in alphas.items()}
        batch = make_teacher().next_batch()
        net.loss_mixture(probs, batch.inputs, batch.labels).backward()
        for alpha in alphas.values():
            assert alpha.grad is not None
            assert np.any(alpha.grad != 0)

    def test_branch_count(self):
        net = make_net(num_layers=3)
        assert net.mixture_branch_count == 3 * 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MixtureSupernetConfig(num_layers=0)
        with pytest.raises(ValueError):
            MixtureSupernetConfig(width_choices=())
        with pytest.raises(ValueError):
            MixtureSupernetConfig(width_choices=(0, 8))

    def test_search_space_matches_config(self):
        net = make_net(num_layers=2)
        space = mixture_search_space(net.config)
        assert len(space) == 4
        assert space.cardinality() == (4 * 4) ** 2


class TestDartsSearch:
    def run_search(self, steps=120, seed=0):
        net = make_net()
        teacher = make_teacher(seed)
        pipeline = TwoStreamPipeline(teacher.next_batch, train_batches=30, valid_batches=15)
        search = DartsSearch(net, pipeline, DartsConfig(steps=steps, warmup_steps=15))
        return net, teacher, search, search.run()

    def test_training_losses_decrease(self):
        _, _, _, result = self.run_search()
        assert np.mean(result.train_losses[-10:]) < np.mean(result.train_losses[:10])

    def test_derived_architecture_valid_and_good(self):
        net, teacher, search, result = self.run_search()
        search.space.validate(result.final_architecture)
        batch = teacher.next_batch()
        quality = net.quality(result.final_architecture, batch.inputs, batch.labels)
        assert quality > 0.45  # well above 4-class chance

    def test_requires_two_datasets(self):
        """The bilevel structure consumes both splits (unlike single-step)."""
        net = make_net()
        teacher = make_teacher()
        pipeline = TwoStreamPipeline(teacher.next_batch, train_batches=5, valid_batches=5)
        DartsSearch(net, pipeline, DartsConfig(steps=30, warmup_steps=5)).run()
        assert pipeline.train_reuses >= 1
        assert pipeline.valid_reuses >= 1

    def test_every_step_evaluates_all_branches(self):
        """The taxonomy's cost claim: branch count per step > 1."""
        _, _, _, result = self.run_search(steps=5)
        assert result.branch_evaluations_per_step == 2 * 2 * 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DartsConfig(steps=0)
        with pytest.raises(ValueError):
            DartsConfig(alpha_lr=0.0)
        with pytest.raises(ValueError):
            DartsConfig(warmup_steps=-1)

    def test_alphas_move_from_uniform(self):
        net, _, search, _ = self.run_search()
        moved = any(np.ptp(alpha.data) > 1e-3 for alpha in search.alphas.values())
        assert moved
