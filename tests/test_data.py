"""Tests for batches, synthetic teachers, and the data pipelines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Batch,
    CtrTaskConfig,
    CtrTeacher,
    PipelineExhausted,
    PipelineProtocolError,
    SingleStepPipeline,
    TwoStreamPipeline,
    VisionTaskConfig,
    VisionTeacher,
)


class TestBatch:
    def test_size(self):
        b = Batch(0, {"x": np.ones((4, 2))}, np.zeros(4))
        assert b.size == 4

    def test_split(self):
        b = Batch(0, {"x": np.arange(8).reshape(4, 2)}, np.arange(4))
        first, second = b.split()
        assert first.size == 2 and second.size == 2
        np.testing.assert_array_equal(second.labels, [2, 3])

    def test_split_too_small(self):
        with pytest.raises(ValueError):
            Batch(0, {"x": np.ones((1, 1))}, np.zeros(1)).split()


class TestCtrTeacher:
    def test_batch_shapes(self):
        teacher = CtrTeacher(CtrTaskConfig(num_tables=3, batch_size=16))
        b = teacher.next_batch()
        assert b.inputs["dense"].shape == (16, 8)
        assert b.inputs["sparse"].shape == (16, 3)
        assert b.labels.shape == (16, 1)

    def test_unique_batch_ids(self):
        teacher = CtrTeacher(CtrTaskConfig())
        ids = [teacher.next_batch().batch_id for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_labels_binary(self):
        teacher = CtrTeacher(CtrTaskConfig(batch_size=128))
        labels = teacher.next_batch().labels
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_signal_is_learnable(self):
        """The planted signal is strong enough to beat chance."""
        cfg = CtrTaskConfig(batch_size=4096, seed=7)
        teacher = CtrTeacher(cfg)
        batch = teacher.next_batch()
        # The memorized logits alone should correlate with labels.
        memor = np.zeros(cfg.batch_size)
        for t in range(cfg.num_tables):
            memor += teacher._table_importance[t] * teacher._id_logits[
                t, batch.inputs["sparse"][:, t]
            ]
        predicted = (memor > 0).astype(float)
        assert (predicted == batch.labels[:, 0]).mean() > 0.55

    def test_deterministic_given_seed(self):
        a = CtrTeacher(CtrTaskConfig(seed=3)).next_batch()
        b = CtrTeacher(CtrTaskConfig(seed=3)).next_batch()
        np.testing.assert_array_equal(a.inputs["dense"], b.inputs["dense"])

    def test_sparse_ids_in_vocab(self):
        cfg = CtrTaskConfig(vocab_size=32, batch_size=256)
        batch = CtrTeacher(cfg).next_batch()
        assert batch.inputs["sparse"].max() < 32
        assert batch.inputs["sparse"].min() >= 0


class TestVisionTeacher:
    def test_batch_shapes(self):
        teacher = VisionTeacher(VisionTaskConfig(batch_size=8))
        b = teacher.next_batch()
        assert b.inputs["x"].shape == (8, 16)
        assert b.labels.shape == (8,)

    def test_labels_in_range(self):
        cfg = VisionTaskConfig(num_classes=5, batch_size=256)
        labels = VisionTeacher(cfg).next_batch().labels
        assert labels.min() >= 0 and labels.max() < 5

    def test_all_classes_appear(self):
        cfg = VisionTaskConfig(batch_size=512, seed=1)
        labels = VisionTeacher(cfg).next_batch().labels
        assert len(np.unique(labels)) == cfg.num_classes

    def test_noise_level(self):
        noisy = VisionTaskConfig(label_noise=0.5, batch_size=512, seed=2)
        clean = VisionTaskConfig(label_noise=0.0, batch_size=512, seed=2)
        nb = VisionTeacher(noisy).next_batch()
        cb = VisionTeacher(clean).next_batch()
        assert (nb.labels != cb.labels).mean() > 0.2


class TestSingleStepPipeline:
    def make(self, max_batches=None):
        teacher = CtrTeacher(CtrTaskConfig(batch_size=4))
        return SingleStepPipeline(teacher.next_batch, max_batches=max_batches)

    def test_each_batch_fresh(self):
        pipe = self.make()
        ids = {pipe.next_batch().batch_id for _ in range(10)}
        assert len(ids) == 10

    def test_policy_then_weights_allowed(self):
        pipe = self.make()
        batch = pipe.next_batch()
        pipe.mark_policy_use(batch)
        pipe.mark_weight_use(batch)  # no error

    def test_weights_before_policy_rejected(self):
        pipe = self.make()
        batch = pipe.next_batch()
        with pytest.raises(PipelineProtocolError, match="policy-before-weights"):
            pipe.mark_weight_use(batch)

    def test_double_policy_use_rejected(self):
        pipe = self.make()
        batch = pipe.next_batch()
        pipe.mark_policy_use(batch)
        with pytest.raises(PipelineProtocolError):
            pipe.mark_policy_use(batch)

    def test_double_weight_use_rejected(self):
        pipe = self.make()
        batch = pipe.next_batch()
        pipe.mark_policy_use(batch)
        pipe.mark_weight_use(batch)
        with pytest.raises(PipelineProtocolError, match="at most once"):
            pipe.mark_weight_use(batch)

    def test_unknown_batch_rejected(self):
        pipe = self.make()
        stranger = Batch(999, {"x": np.ones((2, 1))}, np.zeros(2))
        with pytest.raises(PipelineProtocolError, match="never issued"):
            pipe.mark_policy_use(stranger)

    def test_max_batches(self):
        pipe = self.make(max_batches=3)
        for _ in range(3):
            pipe.next_batch()
        assert pipe.exhausted()
        with pytest.raises(PipelineExhausted, match="exhausted"):
            pipe.next_batch()

    def test_exhaustion_is_not_stop_iteration(self):
        """Exhaustion must escape ``for`` loops and generators loudly.

        A bare ``StopIteration`` raised inside a generator is swallowed
        by the iteration protocol, silently truncating the consumer; the
        dedicated ``PipelineExhausted`` is a ``PipelineProtocolError``
        instead and propagates.
        """
        assert not issubclass(PipelineExhausted, StopIteration)
        assert issubclass(PipelineExhausted, PipelineProtocolError)
        pipe = self.make(max_batches=2)

        def consume_stream():
            while True:
                yield pipe.next_batch()

        seen = []
        with pytest.raises(PipelineExhausted):
            for batch in consume_stream():
                seen.append(batch.batch_id)
        assert len(seen) == 2  # both real batches arrived before the error

    def test_bookkeeping_evicted_on_full_consumption(self):
        pipe = self.make()
        batch = pipe.next_batch()
        assert pipe.outstanding_batches == 1
        pipe.mark_policy_use(batch)
        assert pipe.outstanding_batches == 1
        pipe.mark_weight_use(batch)
        assert pipe.outstanding_batches == 0

    def test_long_stream_memory_stays_bounded(self):
        """10k fully-consumed batches leave zero bookkeeping behind.

        Regression test for the unbounded ``_state`` dict: the pipeline
        must hold O(outstanding batches) state, not O(stream length).
        """
        teacher = CtrTeacher(CtrTaskConfig(batch_size=2))
        pipe = SingleStepPipeline(teacher.next_batch)
        for _ in range(10_000):
            batch = pipe.next_batch()
            pipe.mark_policy_use(batch)
            pipe.mark_weight_use(batch)
        assert pipe.batches_issued == 10_000
        assert pipe.outstanding_batches == 0
        assert pipe.peak_outstanding == 1

    def test_consumed_batch_reuse_still_detected_after_eviction(self):
        """Eviction must not forget that a batch was fully consumed."""
        pipe = self.make()
        batch = pipe.next_batch()
        pipe.mark_policy_use(batch)
        pipe.mark_weight_use(batch)
        with pytest.raises(PipelineProtocolError, match="fully consumed"):
            pipe.mark_policy_use(batch)
        with pytest.raises(PipelineProtocolError, match="at most once"):
            pipe.mark_weight_use(batch)

    def test_policy_error_reports_actual_state(self):
        pipe = self.make()
        batch = pipe.next_batch()
        pipe.mark_policy_use(batch)
        with pytest.raises(PipelineProtocolError, match="state='policy'"):
            pipe.mark_policy_use(batch)

    def test_reissued_batch_rejected(self):
        fixed = Batch(0, {"x": np.ones((2, 1))}, np.zeros(2))
        pipe = SingleStepPipeline(lambda: fixed)
        pipe.next_batch()
        with pytest.raises(PipelineProtocolError, match="re-issued"):
            pipe.next_batch()

    def test_batches_issued_counter(self):
        pipe = self.make()
        for _ in range(4):
            pipe.next_batch()
        assert pipe.batches_issued == 4


class TestTwoStreamPipeline:
    def make(self, train=3, valid=2):
        teacher = CtrTeacher(CtrTaskConfig(batch_size=4))
        return TwoStreamPipeline(teacher.next_batch, train_batches=train, valid_batches=valid)

    def test_splits_are_disjoint(self):
        pipe = self.make()
        train_ids = {pipe.next_train_batch().batch_id for _ in range(3)}
        valid_ids = {pipe.next_valid_batch().batch_id for _ in range(2)}
        assert not (train_ids & valid_ids)

    def test_reuse_counted(self):
        pipe = self.make(train=2, valid=2)
        for _ in range(5):
            pipe.next_train_batch()
        assert pipe.train_reuses == 2

    def test_valid_cycle(self):
        pipe = self.make(train=2, valid=2)
        first = pipe.next_valid_batch().batch_id
        pipe.next_valid_batch()
        again = pipe.next_valid_batch().batch_id
        assert first == again
        assert pipe.valid_reuses == 1

    def test_sizes(self):
        pipe = self.make(train=4, valid=3)
        assert pipe.train_size == 4 and pipe.valid_size == 3

    def test_validation(self):
        teacher = CtrTeacher(CtrTaskConfig())
        with pytest.raises(ValueError):
            TwoStreamPipeline(teacher.next_batch, train_batches=0, valid_batches=1)

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_train_cursor_never_escapes_split(self, train, valid, steps):
        teacher = CtrTeacher(CtrTaskConfig(batch_size=4))
        pipe = TwoStreamPipeline(teacher.next_batch, train, valid)
        train_ids = {pipe.next_train_batch().batch_id for _ in range(steps + 1)}
        assert train_ids <= set(range(train))
