"""Execution-backend equivalence: the engine's core determinism property.

A search run on :class:`ThreadPoolBackend` must produce a
``SearchResult`` bit-identical to the same search on
:class:`SerialBackend` — same per-step rewards/qualities/entropies,
same final architecture, same cache counters — including when the
threaded run is crashed and resumed through ``run_with_checkpoints``.
Plus unit coverage of the backend contract itself (order-preserving
map, per-task rng splitting, checkpointable split counter) and of the
:class:`~repro.supernet.StackedScoring` protocol that replaced the old
``getattr`` duck-typing.
"""

import numpy as np
import pytest

from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SerialBackend,
    SingleStepSearch,
    SurrogateSuperNetwork,
    ThreadPoolBackend,
    TunasSearch,
    relu_reward,
    resolve_backend,
)
from repro.core.engine import BACKEND_ENV_VAR, WORKERS_ENV_VAR, ExecutionBackend
from repro.core.eval_runtime import EvalRuntime
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline, TwoStreamPipeline
from repro.runtime import CheckpointStore, FaultInjector, FaultSpec, run_with_checkpoints
from repro.runtime.faults import InjectedCrash, _MidShardCrash
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig, StackedScoring
from repro.telemetry import Telemetry

NUM_TABLES = 2
STEPS = 8


def build_space():
    return dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))


def capacity_cost(arch):
    cost = 1.0
    for t in range(NUM_TABLES):
        cost += 0.05 * arch[f"emb{t}/width_delta"]
        cost += 0.2 * (arch[f"emb{t}/vocab_scale"] - 1.0)
    for s in range(2):
        cost += 0.04 * arch[f"dense{s}/width_delta"]
    return {"step_time": max(0.1, cost)}


def build_single(backend, seed=0, telemetry=None, workers=None):
    teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed))
    return SingleStepSearch(
        space=build_space(),
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=capacity_cost,
        config=SearchConfig(
            steps=STEPS, num_cores=4, warmup_steps=2, seed=seed,
            backend=backend, workers=workers, telemetry=telemetry,
        ),
    )


def build_tunas(backend, seed=0, telemetry=None, workers=None):
    teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed))
    return TunasSearch(
        space=build_space(),
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)),
        pipeline=TwoStreamPipeline(teacher.next_batch, train_batches=6, valid_batches=4),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=capacity_cost,
        config=SearchConfig(
            steps=STEPS, num_cores=4, warmup_steps=2, seed=seed,
            backend=backend, workers=workers, telemetry=telemetry,
        ),
    )


BUILDERS = {"single_step": build_single, "tunas": build_tunas}


def assert_results_identical(reference, other, space):
    """Bit-identical SearchResults (stage wall-times excluded)."""
    np.testing.assert_array_equal(reference.rewards(), other.rewards())
    np.testing.assert_array_equal(reference.entropies(), other.entropies())
    assert [s.mean_quality for s in reference.history] == [
        s.mean_quality for s in other.history
    ]
    assert list(space.indices_of(reference.final_architecture)) == list(
        space.indices_of(other.final_architecture)
    )
    assert reference.batches_used == other.batches_used
    assert reference.eval_stats.cache_hits == other.eval_stats.cache_hits
    assert reference.eval_stats.cache_misses == other.eval_stats.cache_misses
    assert reference.eval_stats.evaluations == other.eval_stats.evaluations


class TestBackendContract:
    def test_serial_map_preserves_order(self):
        backend = SerialBackend()
        assert backend.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_threaded_map_preserves_order(self):
        backend = ThreadPoolBackend(workers=4)
        items = list(range(64))
        # Uneven per-task work so completion order differs from
        # submission order; results must still come back in item order.
        assert backend.map(
            lambda i: (i, sum(range((64 - i) * 50))), items
        ) == [(i, sum(range((64 - i) * 50))) for i in items]

    def test_threaded_map_propagates_exceptions(self):
        backend = ThreadPoolBackend(workers=2)
        with pytest.raises(ZeroDivisionError):
            backend.map(lambda x: 1 // x, [1, 2, 0, 3])

    def test_rng_streams_identical_across_backends(self):
        serial = SerialBackend(seed=7)
        threaded = ThreadPoolBackend(workers=4, seed=7)
        for _ in range(3):  # several fan-outs advance the split counter
            a = [rng.standard_normal(4) for rng in serial.rng_streams(5)]
            b = [rng.standard_normal(4) for rng in threaded.rng_streams(5)]
            for x, y in zip(a, b):
                np.testing.assert_array_equal(x, y)

    def test_rng_streams_differ_between_fanouts_and_tasks(self):
        backend = SerialBackend(seed=7)
        first = [rng.standard_normal(4) for rng in backend.rng_streams(2)]
        second = [rng.standard_normal(4) for rng in backend.rng_streams(2)]
        assert not np.array_equal(first[0], first[1])  # per-task split
        assert not np.array_equal(first[0], second[0])  # per-fan-out split

    def test_split_counter_rides_in_state_dict(self):
        backend = SerialBackend(seed=7)
        backend.rng_streams(3)
        state = backend.state_dict()
        assert state == {"name": "serial", "workers": 1, "rng_spawns": 1}
        resumed = SerialBackend(seed=7)
        resumed.load_state_dict(state)
        a = [rng.standard_normal(4) for rng in backend.rng_streams(2)]
        b = [rng.standard_normal(4) for rng in resumed.rng_streams(2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(workers=0)

    def test_resolve_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend("serial"), SerialBackend)
        threaded = resolve_backend("threads", workers=3)
        assert isinstance(threaded, ThreadPoolBackend) and threaded.workers == 3
        instance = ThreadPoolBackend(workers=2)
        assert resolve_backend(instance) is instance
        with pytest.raises(ValueError):
            resolve_backend("gpu")

    def test_resolve_backend_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threads")
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        backend = resolve_backend(None)
        assert isinstance(backend, ThreadPoolBackend) and backend.workers == 2
        # An explicit spec still wins over the environment.
        assert isinstance(resolve_backend("serial"), SerialBackend)


class TestStackedScoringProtocol:
    def test_dlrm_supernet_is_stacked_scoring(self):
        supernet = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES))
        assert isinstance(supernet, StackedScoring)

    def test_surrogate_is_not_stacked_scoring(self):
        assert not isinstance(SurrogateSuperNetwork(lambda a: 1.0), StackedScoring)

    def test_mid_shard_proxy_follows_inner_supernet(self):
        # The crash proxy defines quality_many unconditionally but
        # forwards loss_many lookups to the inner supernet, so the
        # protocol check reflects the wrapped supernet's capability.
        stacked = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES))
        assert isinstance(
            _MidShardCrash(stacked, after_calls=99, on_fire=lambda: None),
            StackedScoring,
        )
        flat = SurrogateSuperNetwork(lambda a: 1.0)
        assert not isinstance(
            _MidShardCrash(flat, after_calls=99, on_fire=lambda: None),
            StackedScoring,
        )


class TestPipelineShardHandOff:
    def test_next_shard_matches_sequential_fetches(self):
        def make():
            teacher = CtrTeacher(
                CtrTaskConfig(num_tables=NUM_TABLES, batch_size=8, seed=3)
            )
            return SingleStepPipeline(teacher.next_batch)

        sharded, sequential = make(), make()
        shard = sharded.next_shard(3)
        singles = [sequential.next_batch() for _ in range(3)]
        assert [b.batch_id for b in shard] == [b.batch_id for b in singles]
        assert sharded.batches_issued == sequential.batches_issued == 3

    def test_next_shard_rejects_bad_count(self):
        teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=8))
        with pytest.raises(ValueError):
            SingleStepPipeline(teacher.next_batch).next_shard(0)


class TestBackendEquivalence:
    """Serial vs thread-pool bit-identity for both strategies."""

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_threaded_matches_serial(self, strategy):
        build = BUILDERS[strategy]
        serial = build(backend="serial").run()
        threaded_search = build(backend="threads", workers=4)
        assert threaded_search.backend.workers == 4
        threaded = threaded_search.run()
        assert_results_identical(serial, threaded, build_space())

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_threaded_matches_serial_without_grouping(self, strategy):
        def run(backend):
            search = BUILDERS[strategy](backend=backend)
            object.__setattr__(search.config, "group_unique", False)
            return search.run()

        assert_results_identical(
            run("serial"), run(ThreadPoolBackend(workers=3)), build_space()
        )

    def test_split_noise_surrogate_matches_across_backends(self):
        # A stochastic quality signal with split-rng support fans out
        # per task; the per-task streams make every backend identical.
        def run(backend):
            teacher = CtrTeacher(
                CtrTaskConfig(num_tables=NUM_TABLES, batch_size=8, seed=0)
            )
            space = build_space()
            search = SingleStepSearch(
                space=space,
                supernet=SurrogateSuperNetwork(
                    lambda a: 1.0 - 0.01 * a["emb0/width_delta"],
                    noise_sigma=0.05,
                    seed=11,
                    split_noise=True,
                ),
                pipeline=SingleStepPipeline(teacher.next_batch),
                reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
                performance_fn=capacity_cost,
                config=SearchConfig(
                    steps=STEPS, num_cores=4, warmup_steps=2, seed=0, backend=backend
                ),
            )
            return search.run()

        assert_results_identical(
            run("serial"), run(ThreadPoolBackend(workers=4)), build_space()
        )

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_threaded_crash_resume_matches_serial(self, tmp_path, strategy):
        build = BUILDERS[strategy]
        reference = build(backend="serial").run()

        store = CheckpointStore(tmp_path, keep_last=2)
        injector = FaultInjector([FaultSpec("crash", step=5)])
        dying = build(backend="threads", workers=4)
        injector.arm(dying, store)
        with pytest.raises(InjectedCrash):
            run_with_checkpoints(
                dying, store=store, checkpoint_every=2, injector=injector
            )
        del dying  # the "process" is gone; only the store survives

        resumed = run_with_checkpoints(
            build(backend="threads", workers=4), store=store, checkpoint_every=2
        )
        assert resumed.resume.resumed
        assert_results_identical(reference, resumed.result, build_space())

    def test_backend_state_rides_in_snapshots(self):
        search = build_single(backend="threads", workers=2)
        search.backend.rng_streams(1)
        state = search.state_dict()
        assert state["backend"] == {"name": "threads", "workers": 2, "rng_spawns": 1}
        fresh = build_single(backend="threads", workers=2)
        fresh.load_state_dict(state)
        assert fresh.backend.state_dict()["rng_spawns"] == 1

    def test_pre_engine_snapshots_without_backend_state_load(self):
        search = build_single(backend="serial")
        state = search.state_dict()
        del state["backend"]  # a snapshot written before backends existed
        build_single(backend="serial").load_state_dict(state)


class TestParallelSafePricing:
    def test_parallel_safe_fn_fans_out_identically(self):
        class SafeFn:
            parallel_safe = True

            def __call__(self, arch):
                return {"step_time": 1.0 + 0.01 * arch["emb0/width_delta"]}

        space = build_space()
        rng = np.random.default_rng(0)
        drawn = [
            (arch, space.indices_of(arch))
            for arch in (space.sample(rng) for _ in range(12))
        ]
        serial = EvalRuntime(SafeFn(), space=space, cache_capacity=4)
        threaded = EvalRuntime(SafeFn(), space=space, cache_capacity=4)
        threaded.attach_backend(ThreadPoolBackend(workers=4))
        assert serial.price_many(drawn) == threaded.price_many(drawn)
        assert serial.evaluations == threaded.evaluations
        assert serial.cache.export_state() == threaded.cache.export_state()

    def test_stateful_fn_stays_serial(self):
        class CountingFn:
            parallel_safe = False

            def __init__(self):
                self.calls = 0

            def __call__(self, arch):
                self.calls += 1
                return {"step_time": 1.0}

        space = build_space()
        rng = np.random.default_rng(0)
        drawn = [
            (arch, space.indices_of(arch))
            for arch in (space.sample(rng) for _ in range(6))
        ]
        fn = CountingFn()
        runtime = EvalRuntime(fn, space=space)
        runtime.attach_backend(ThreadPoolBackend(workers=4))
        runtime.price_many(drawn)
        assert fn.calls == runtime.evaluations


class TestEngineTelemetry:
    def test_engine_metrics_recorded(self):
        telemetry = Telemetry()
        result = build_single(
            backend="threads", workers=2, telemetry=telemetry
        ).run()
        assert len(result.history) == STEPS
        assert telemetry.gauge("engine.workers").value(backend="threads") == 2
        tasks = telemetry.counter("engine.tasks")
        assert tasks.value(stage="score", backend="threads") > 0
        assert tasks.value(stage="weight_update", backend="threads") > 0
        stats = telemetry.trace.span_stats(
            "worker", stage="score", backend="threads"
        )
        assert stats is not None and stats["count"] == tasks.value(
            stage="score", backend="threads"
        )
