"""Execution-backend equivalence: the engine's core determinism property.

A search run on :class:`ThreadPoolBackend` must produce a
``SearchResult`` bit-identical to the same search on
:class:`SerialBackend` — same per-step rewards/qualities/entropies,
same final architecture, same cache counters — including when the
threaded run is crashed and resumed through ``run_with_checkpoints``.
Plus unit coverage of the backend contract itself (order-preserving
map, per-task rng splitting, checkpointable split counter) and of the
:class:`~repro.supernet.StackedScoring` protocol that replaced the old
``getattr`` duck-typing.
"""

import os
import pickle
import signal
import socket
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.core import (
    DistributedBackend,
    PerformanceObjective,
    ProcessPoolBackend,
    group_unique_architectures,
    SearchConfig,
    SerialBackend,
    SingleStepSearch,
    SurrogateSuperNetwork,
    ThreadPoolBackend,
    TunasSearch,
    relu_reward,
    resolve_backend,
    shutdown_pools,
)
from repro.core.engine import (
    BACKEND_ENV_VAR,
    WORKERS_ENV_VAR,
    ExecutionBackend,
    RemoteContextRef,
    StageTask,
    in_worker,
    run_stage_task,
)
from repro.core.engine import backends as backends_mod
from repro.core.engine import worker as worker_mod
from repro.core.eval_runtime import EvalRuntime
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline, TwoStreamPipeline
from repro.runtime import CheckpointStore, FaultInjector, FaultSpec, run_with_checkpoints
from repro.runtime.faults import InjectedCrash, _MidShardCrash
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig, StackedScoring
from repro.telemetry import Telemetry

NUM_TABLES = 2
STEPS = 8


def build_space():
    return dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))


def capacity_cost(arch):
    cost = 1.0
    for t in range(NUM_TABLES):
        cost += 0.05 * arch[f"emb{t}/width_delta"]
        cost += 0.2 * (arch[f"emb{t}/vocab_scale"] - 1.0)
    for s in range(2):
        cost += 0.04 * arch[f"dense{s}/width_delta"]
    return {"step_time": max(0.1, cost)}


def build_single(backend, seed=0, telemetry=None, workers=None):
    teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed))
    return SingleStepSearch(
        space=build_space(),
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=capacity_cost,
        config=SearchConfig(
            steps=STEPS, num_cores=4, warmup_steps=2, seed=seed,
            backend=backend, workers=workers, telemetry=telemetry,
        ),
    )


def build_tunas(backend, seed=0, telemetry=None, workers=None):
    teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed))
    return TunasSearch(
        space=build_space(),
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)),
        pipeline=TwoStreamPipeline(teacher.next_batch, train_batches=6, valid_batches=4),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=capacity_cost,
        config=SearchConfig(
            steps=STEPS, num_cores=4, warmup_steps=2, seed=seed,
            backend=backend, workers=workers, telemetry=telemetry,
        ),
    )


def build_single_with_fn(backend, performance_fn, seed=0):
    teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed))
    return SingleStepSearch(
        space=build_space(),
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=performance_fn,
        config=SearchConfig(steps=STEPS, num_cores=4, warmup_steps=2, seed=seed, backend=backend),
    )


BUILDERS = {"single_step": build_single, "tunas": build_tunas}


# Module level so they pickle — the process backend's whole point is
# that its tasks travel by qualified name, not by closure.
def _square(x):
    return x * x


def _reciprocal(x):
    return 1 // x


class KillOnceCost:
    """Picklable pricing fn that SIGKILLs the first worker that runs it.

    The flag file (O_EXCL-created) makes the kill fire exactly once
    across all workers and all resubmissions; engine-thread calls never
    kill, so the serial reference run prices identically.
    """

    parallel_safe = True

    def __init__(self, flag_path):
        self.flag_path = str(flag_path)

    def __call__(self, arch):
        if in_worker():
            try:
                fd = os.open(self.flag_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.close(fd)
                os.kill(os.getpid(), signal.SIGKILL)
        return capacity_cost(arch)


def assert_results_identical(reference, other, space):
    """Bit-identical SearchResults (stage wall-times excluded)."""
    np.testing.assert_array_equal(reference.rewards(), other.rewards())
    np.testing.assert_array_equal(reference.entropies(), other.entropies())
    assert [s.mean_quality for s in reference.history] == [
        s.mean_quality for s in other.history
    ]
    assert list(space.indices_of(reference.final_architecture)) == list(
        space.indices_of(other.final_architecture)
    )
    assert reference.batches_used == other.batches_used
    assert reference.eval_stats.cache_hits == other.eval_stats.cache_hits
    assert reference.eval_stats.cache_misses == other.eval_stats.cache_misses
    assert reference.eval_stats.evaluations == other.eval_stats.evaluations


class TestBackendContract:
    def test_serial_map_preserves_order(self):
        backend = SerialBackend()
        assert backend.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_threaded_map_preserves_order(self):
        backend = ThreadPoolBackend(workers=4)
        items = list(range(64))
        # Uneven per-task work so completion order differs from
        # submission order; results must still come back in item order.
        assert backend.map(
            lambda i: (i, sum(range((64 - i) * 50))), items
        ) == [(i, sum(range((64 - i) * 50))) for i in items]

    def test_threaded_map_propagates_exceptions(self):
        backend = ThreadPoolBackend(workers=2)
        with pytest.raises(ZeroDivisionError):
            backend.map(lambda x: 1 // x, [1, 2, 0, 3])

    def test_rng_streams_identical_across_backends(self):
        serial = SerialBackend(seed=7)
        threaded = ThreadPoolBackend(workers=4, seed=7)
        for _ in range(3):  # several fan-outs advance the split counter
            a = [rng.standard_normal(4) for rng in serial.rng_streams(5)]
            b = [rng.standard_normal(4) for rng in threaded.rng_streams(5)]
            for x, y in zip(a, b):
                np.testing.assert_array_equal(x, y)

    def test_rng_streams_differ_between_fanouts_and_tasks(self):
        backend = SerialBackend(seed=7)
        first = [rng.standard_normal(4) for rng in backend.rng_streams(2)]
        second = [rng.standard_normal(4) for rng in backend.rng_streams(2)]
        assert not np.array_equal(first[0], first[1])  # per-task split
        assert not np.array_equal(first[0], second[0])  # per-fan-out split

    def test_split_counter_rides_in_state_dict(self):
        backend = SerialBackend(seed=7)
        backend.rng_streams(3)
        state = backend.state_dict()
        assert state == {"name": "serial", "workers": 1, "rng_spawns": 1}
        resumed = SerialBackend(seed=7)
        resumed.load_state_dict(state)
        a = [rng.standard_normal(4) for rng in backend.rng_streams(2)]
        b = [rng.standard_normal(4) for rng in resumed.rng_streams(2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(workers=0)

    def test_resolve_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend("serial"), SerialBackend)
        threaded = resolve_backend("threads", workers=3)
        assert isinstance(threaded, ThreadPoolBackend) and threaded.workers == 3
        instance = ThreadPoolBackend(workers=2)
        assert resolve_backend(instance) is instance
        with pytest.raises(ValueError):
            resolve_backend("gpu")

    def test_resolve_backend_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threads")
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        backend = resolve_backend(None)
        assert isinstance(backend, ThreadPoolBackend) and backend.workers == 2
        # An explicit spec still wins over the environment.
        assert isinstance(resolve_backend("serial"), SerialBackend)


class TestStackedScoringProtocol:
    def test_dlrm_supernet_is_stacked_scoring(self):
        supernet = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES))
        assert isinstance(supernet, StackedScoring)

    def test_surrogate_is_not_stacked_scoring(self):
        assert not isinstance(SurrogateSuperNetwork(lambda a: 1.0), StackedScoring)

    def test_mid_shard_proxy_follows_inner_supernet(self):
        # The crash proxy defines quality_many unconditionally but
        # forwards loss_many lookups to the inner supernet, so the
        # protocol check reflects the wrapped supernet's capability.
        stacked = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES))
        assert isinstance(
            _MidShardCrash(stacked, after_calls=99, on_fire=lambda: None),
            StackedScoring,
        )
        flat = SurrogateSuperNetwork(lambda a: 1.0)
        assert not isinstance(
            _MidShardCrash(flat, after_calls=99, on_fire=lambda: None),
            StackedScoring,
        )


class TestPipelineShardHandOff:
    def test_next_shard_matches_sequential_fetches(self):
        def make():
            teacher = CtrTeacher(
                CtrTaskConfig(num_tables=NUM_TABLES, batch_size=8, seed=3)
            )
            return SingleStepPipeline(teacher.next_batch)

        sharded, sequential = make(), make()
        shard = sharded.next_shard(3)
        singles = [sequential.next_batch() for _ in range(3)]
        assert [b.batch_id for b in shard] == [b.batch_id for b in singles]
        assert sharded.batches_issued == sequential.batches_issued == 3

    def test_next_shard_rejects_bad_count(self):
        teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=8))
        with pytest.raises(ValueError):
            SingleStepPipeline(teacher.next_batch).next_shard(0)


class TestBackendEquivalence:
    """Serial vs thread-pool bit-identity for both strategies."""

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_threaded_matches_serial(self, strategy):
        build = BUILDERS[strategy]
        serial = build(backend="serial").run()
        threaded_search = build(backend="threads", workers=4)
        assert threaded_search.backend.workers == 4
        threaded = threaded_search.run()
        assert_results_identical(serial, threaded, build_space())

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_threaded_matches_serial_without_grouping(self, strategy):
        def run(backend):
            search = BUILDERS[strategy](backend=backend)
            object.__setattr__(search.config, "group_unique", False)
            return search.run()

        assert_results_identical(
            run("serial"), run(ThreadPoolBackend(workers=3)), build_space()
        )

    def test_split_noise_surrogate_matches_across_backends(self):
        # A stochastic quality signal with split-rng support fans out
        # per task; the per-task streams make every backend identical.
        def run(backend):
            teacher = CtrTeacher(
                CtrTaskConfig(num_tables=NUM_TABLES, batch_size=8, seed=0)
            )
            space = build_space()
            search = SingleStepSearch(
                space=space,
                supernet=SurrogateSuperNetwork(
                    lambda a: 1.0 - 0.01 * a["emb0/width_delta"],
                    noise_sigma=0.05,
                    seed=11,
                    split_noise=True,
                ),
                pipeline=SingleStepPipeline(teacher.next_batch),
                reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
                performance_fn=capacity_cost,
                config=SearchConfig(
                    steps=STEPS, num_cores=4, warmup_steps=2, seed=0, backend=backend
                ),
            )
            return search.run()

        assert_results_identical(
            run("serial"), run(ThreadPoolBackend(workers=4)), build_space()
        )

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_threaded_crash_resume_matches_serial(self, tmp_path, strategy):
        build = BUILDERS[strategy]
        reference = build(backend="serial").run()

        store = CheckpointStore(tmp_path, keep_last=2)
        injector = FaultInjector([FaultSpec("crash", step=5)])
        dying = build(backend="threads", workers=4)
        injector.arm(dying, store)
        with pytest.raises(InjectedCrash):
            run_with_checkpoints(
                dying, store=store, checkpoint_every=2, injector=injector
            )
        del dying  # the "process" is gone; only the store survives

        resumed = run_with_checkpoints(
            build(backend="threads", workers=4), store=store, checkpoint_every=2
        )
        assert resumed.resume.resumed
        assert_results_identical(reference, resumed.result, build_space())

    def test_backend_state_rides_in_snapshots(self):
        search = build_single(backend="threads", workers=2)
        search.backend.rng_streams(1)
        state = search.state_dict()
        assert state["backend"] == {"name": "threads", "workers": 2, "rng_spawns": 1}
        fresh = build_single(backend="threads", workers=2)
        fresh.load_state_dict(state)
        assert fresh.backend.state_dict()["rng_spawns"] == 1

    def test_pre_engine_snapshots_without_backend_state_load(self):
        search = build_single(backend="serial")
        state = search.state_dict()
        del state["backend"]  # a snapshot written before backends existed
        build_single(backend="serial").load_state_dict(state)


class TestParallelSafePricing:
    def test_parallel_safe_fn_fans_out_identically(self):
        class SafeFn:
            parallel_safe = True

            def __call__(self, arch):
                return {"step_time": 1.0 + 0.01 * arch["emb0/width_delta"]}

        space = build_space()
        rng = np.random.default_rng(0)
        drawn = [
            (arch, space.indices_of(arch))
            for arch in (space.sample(rng) for _ in range(12))
        ]
        serial = EvalRuntime(SafeFn(), space=space, cache_capacity=4)
        threaded = EvalRuntime(SafeFn(), space=space, cache_capacity=4)
        threaded.attach_backend(ThreadPoolBackend(workers=4))
        assert serial.price_many(drawn) == threaded.price_many(drawn)
        assert serial.evaluations == threaded.evaluations
        assert serial.cache.export_state() == threaded.cache.export_state()

    def test_stateful_fn_stays_serial(self):
        class CountingFn:
            parallel_safe = False

            def __init__(self):
                self.calls = 0

            def __call__(self, arch):
                self.calls += 1
                return {"step_time": 1.0}

        space = build_space()
        rng = np.random.default_rng(0)
        drawn = [
            (arch, space.indices_of(arch))
            for arch in (space.sample(rng) for _ in range(6))
        ]
        fn = CountingFn()
        runtime = EvalRuntime(fn, space=space)
        runtime.attach_backend(ThreadPoolBackend(workers=4))
        runtime.price_many(drawn)
        assert fn.calls == runtime.evaluations


def _surrogate_quality(arch):
    return 1.0 - 0.01 * arch["emb0/width_delta"]


class TestProcessBackendContract:
    def test_map_preserves_order(self):
        backend = ProcessPoolBackend(workers=2)
        items = list(range(16))
        assert backend.map(_square, items) == [i * i for i in items]

    def test_map_propagates_task_exceptions(self):
        backend = ProcessPoolBackend(workers=2)
        with pytest.raises(ZeroDivisionError):
            backend.map(_reciprocal, [1, 2, 0, 3])

    def test_unpicklable_fn_degrades_to_local_map(self):
        backend = ProcessPoolBackend(workers=2)
        calls = []

        def fn(x):  # closure: cannot travel to a worker process
            calls.append(x)
            return x + 1

        assert backend.map(fn, [1, 2, 3]) == [2, 3, 4]
        assert calls == [1, 2, 3]  # ran in this process, in order

    def test_rng_streams_identical_to_serial(self):
        serial = SerialBackend(seed=7)
        procs = ProcessPoolBackend(workers=2, seed=7)
        for _ in range(3):
            a = [rng.standard_normal(4) for rng in serial.rng_streams(5)]
            b = [rng.standard_normal(4) for rng in procs.rng_streams(5)]
            for x, y in zip(a, b):
                np.testing.assert_array_equal(x, y)

    def test_state_dict_carries_weights_version(self):
        backend = ProcessPoolBackend(workers=2)
        state = backend.state_dict()
        assert state["name"] == "processes"
        assert state["weights_version"] == 0  # no supernet registered
        ProcessPoolBackend(workers=2).load_state_dict(state)

    def test_resolve_backend_processes_and_aliases(self):
        for spec in ("processes", "process", "procs", "processpool", "mp"):
            backend = resolve_backend(spec, workers=2)
            assert isinstance(backend, ProcessPoolBackend)
            assert backend.workers == 2

    def test_bad_workers_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "four")
        with pytest.raises(ValueError, match=r"REPRO_WORKERS.*'four'"):
            resolve_backend("threads")

    def test_unknown_backend_error_derives_names_from_registry(self):
        with pytest.raises(ValueError, match="processes"):
            resolve_backend("gpu")

    def test_env_sourced_bad_backend_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(ValueError, match=r"REPRO_BACKEND"):
            resolve_backend(None)


class TestPoolLifecycle:
    def test_owned_thread_pool_released_on_close(self):
        backend = ThreadPoolBackend(workers=2, shared=False)
        assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert backend._owned_pool is not None
        backend.close()
        assert backend._owned_pool is None

    def test_owned_process_pool_released_on_close(self):
        backend = ProcessPoolBackend(workers=2, shared=False)
        assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert backend._owned_pool is not None
        backend.close()
        assert backend._owned_pool is None

    def test_shutdown_pools_clears_shared_registry(self):
        backend = ThreadPoolBackend(workers=3)
        assert backend.map(_square, [1, 2]) == [1, 4]
        assert backends_mod._POOLS
        shutdown_pools()
        assert not backends_mod._POOLS
        # Pools rebuild transparently on the next map.
        assert backend.map(_square, [2, 3]) == [4, 9]


class TestStageTaskPickling:
    """Every engine stage task must survive pickle.

    The regression this pins is a closure capture sneaking back into
    the remote score path: the process backend silently degrades to
    in-process execution for unpicklable functions, so a capture would
    not fail loudly — it would quietly serialize the whole CI leg.
    """

    def _local_ref(self, supernet):
        context_id = worker_mod.next_context_id()
        worker_mod.register_local_context(context_id, supernet)
        return RemoteContextRef(
            context_id=context_id,
            spec_segment="",
            weights_segment=None,
            layout=(),
            version=0,
        )

    def _shard(self, search, count=4):
        drawn = search.sample_shard(count, warming_up=True)
        batches = [search.pipeline.next_batch() for _ in range(count)]
        return drawn, batches

    def _assert_round_trip(self, tasks):
        for task in tasks:
            clone = pickle.loads(pickle.dumps(task))
            assert clone.stage == task.stage and clone.kind == task.kind
            direct, _, _ = run_stage_task(task)
            cloned, _, _ = run_stage_task(clone)
            assert direct == cloned

    def test_quality_many_tasks_round_trip(self):
        search = build_single(backend="serial")
        drawn, batches = self._shard(search)
        groups = group_unique_architectures(drawn)
        ref = self._local_ref(search.supernet)
        tasks = [
            StageTask(stage="score", kind="quality_many", context=ref, payload=p)
            for p in worker_mod.quality_many_payloads(drawn, batches, groups)
        ]
        self._assert_round_trip(tasks)

    def test_quality_tasks_round_trip(self):
        search = build_single(backend="serial")
        drawn, batches = self._shard(search)
        ref = self._local_ref(search.supernet)
        tasks = [
            StageTask(stage="score", kind="quality", context=ref, payload=p)
            for p in worker_mod.quality_payloads(drawn, batches[0])
        ]
        self._assert_round_trip(tasks)

    def test_quality_split_tasks_round_trip(self):
        # Generators pickle with their exact bit-generator state: the
        # pickled task must draw the same noise the live one would.
        supernet = SurrogateSuperNetwork(
            _surrogate_quality, noise_sigma=0.05, seed=11, split_noise=True
        )
        search = build_single(backend="serial")
        drawn, batches = self._shard(search)
        ref = self._local_ref(supernet)

        def make_tasks():
            streams = SerialBackend(seed=3).rng_streams(len(drawn))
            return [
                StageTask(stage="score", kind="quality_split", context=ref, payload=p)
                for p in worker_mod.quality_split_payloads(drawn, batches, streams)
            ]

        live = [run_stage_task(t)[0] for t in make_tasks()]
        pickled = [
            run_stage_task(pickle.loads(pickle.dumps(t)))[0] for t in make_tasks()
        ]
        assert live == pickled

    def test_task_entry_point_and_pricing_fns_pickle(self):
        assert pickle.loads(pickle.dumps(run_stage_task)) is run_stage_task
        assert pickle.loads(pickle.dumps(capacity_cost)) is capacity_cost
        clone = pickle.loads(pickle.dumps(KillOnceCost("/tmp/flag")))
        assert clone.flag_path == "/tmp/flag"

    def test_unknown_task_kind_rejected(self):
        search = build_single(backend="serial")
        ref = self._local_ref(search.supernet)
        task = StageTask(stage="score", kind="mystery", context=ref, payload=())
        with pytest.raises(ValueError):
            run_stage_task(task)


class TestProcessEquivalence:
    """Serial vs process-pool bit-identity: the tentpole contract."""

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_processes_match_serial(self, strategy):
        build = BUILDERS[strategy]
        serial = build(backend="serial").run()
        proc_search = build(backend="processes", workers=2)
        assert proc_search._remote_active()  # scoring really goes remote
        assert_results_identical(serial, proc_search.run(), build_space())

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_process_crash_resume_matches_serial(self, tmp_path, strategy):
        build = BUILDERS[strategy]
        reference = build(backend="serial").run()

        store = CheckpointStore(tmp_path, keep_last=2)
        injector = FaultInjector([FaultSpec("crash", step=5)])
        dying = build(backend="processes", workers=2)
        injector.arm(dying, store)
        with pytest.raises(InjectedCrash):
            run_with_checkpoints(
                dying, store=store, checkpoint_every=2, injector=injector
            )
        del dying

        resumed = run_with_checkpoints(
            build(backend="processes", workers=2), store=store, checkpoint_every=2
        )
        assert resumed.resume.resumed
        assert_results_identical(reference, resumed.result, build_space())

    def test_killed_worker_resubmits_and_matches_serial(self, tmp_path):
        flag = tmp_path / "killed"
        serial = build_single_with_fn("serial", KillOnceCost(flag)).run()
        backend = ProcessPoolBackend(workers=2, shared=False)
        result = build_single_with_fn(backend, KillOnceCost(flag)).run()
        assert flag.exists()  # a worker really died mid-shard
        assert backend.worker_losses >= 1
        assert_results_identical(serial, result, build_space())
        backend.close()

    def test_unpicklable_supernet_stays_in_process(self):
        # A lambda quality fn cannot travel; registration must probe
        # that and keep every stage on the (always correct) local path.
        def run(backend):
            teacher = CtrTeacher(
                CtrTaskConfig(num_tables=NUM_TABLES, batch_size=8, seed=0)
            )
            search = SingleStepSearch(
                space=build_space(),
                supernet=SurrogateSuperNetwork(
                    lambda a: 1.0 - 0.01 * a["emb0/width_delta"],
                    noise_sigma=0.05,
                    seed=11,
                    split_noise=True,
                ),
                pipeline=SingleStepPipeline(teacher.next_batch),
                reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
                performance_fn=capacity_cost,
                config=SearchConfig(
                    steps=STEPS, num_cores=4, warmup_steps=2, seed=0, backend=backend
                ),
            )
            if isinstance(backend, ProcessPoolBackend):
                assert search._remote_ctx is None
            return search.run()

        assert_results_identical(
            run("serial"), run(ProcessPoolBackend(workers=2)), build_space()
        )

    def test_process_backend_state_rides_in_snapshots(self):
        search = build_single(backend="processes", workers=2)
        state = search.state_dict()
        backend_state = state["backend"]
        assert backend_state["name"] == "processes"
        assert backend_state["weights_version"] >= 2  # published at build
        fresh = build_single(backend="processes", workers=2)
        fresh.load_state_dict(state)
        # Restore fast-forwards the segment version past the snapshot's
        # so surviving workers refresh on their first post-resume task.
        assert (
            fresh.backend.state_dict()["weights_version"]
            > backend_state["weights_version"]
        )

    def test_process_engine_telemetry(self):
        telemetry = Telemetry()
        result = build_single(
            backend="processes", workers=2, telemetry=telemetry
        ).run()
        assert len(result.history) == STEPS
        assert telemetry.counter("engine.ipc.bytes").value(backend="processes") > 0
        assert telemetry.counter("engine.tasks").value(
            stage="score", backend="processes"
        ) > 0
        spans = telemetry.trace.registry.histogram("span.worker").series()
        labels = [dict(key) for key in spans]
        assert any(
            entry.get("stage") == "score"
            and entry.get("backend") == "processes"
            and "pid" in entry
            for entry in labels
        )


class TestEngineTelemetry:
    def test_engine_metrics_recorded(self):
        telemetry = Telemetry()
        result = build_single(
            backend="threads", workers=2, telemetry=telemetry
        ).run()
        assert len(result.history) == STEPS
        assert telemetry.gauge("engine.workers").value(backend="threads") == 2
        tasks = telemetry.counter("engine.tasks")
        assert tasks.value(stage="score", backend="threads") > 0
        assert tasks.value(stage="weight_update", backend="threads") > 0
        stats = telemetry.trace.span_stats(
            "worker", stage="score", backend="threads"
        )
        assert stats is not None and stats["count"] == tasks.value(
            stage="score", backend="threads"
        )


class TestDistributedContract:
    """Generic map contract of the TCP backend (loopback workers)."""

    def test_map_preserves_order(self):
        backend = DistributedBackend(workers=2, seed=0)
        items = list(range(16))
        assert backend.map(_square, items) == [i * i for i in items]

    def test_map_propagates_task_exceptions(self):
        # A deterministic task failure travels back as a typed error
        # message and re-raises controller-side — never a retry, never
        # a WorkerCrashError.
        backend = DistributedBackend(workers=2, seed=0)
        with pytest.raises(ZeroDivisionError):
            backend.map(_reciprocal, [1, 2, 0, 3])
        assert backend.worker_losses == 0

    def test_unpicklable_fn_degrades_to_local_map(self):
        backend = DistributedBackend(workers=2, seed=0)
        calls = []

        def fn(x):  # closure: cannot travel over the wire
            calls.append(x)
            return x + 1

        assert backend.map(fn, [1, 2, 3]) == [2, 3, 4]
        assert calls == [1, 2, 3]

    def test_single_worker_never_starts_a_cluster(self):
        backend = DistributedBackend(workers=1, seed=0)
        assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert backend._active_cluster is None

    def test_rng_streams_identical_to_serial(self):
        serial = SerialBackend(seed=7)
        dist = DistributedBackend(workers=2, seed=7)
        for _ in range(3):
            a = [rng.standard_normal(4) for rng in serial.rng_streams(5)]
            b = [rng.standard_normal(4) for rng in dist.rng_streams(5)]
            for x, y in zip(a, b):
                np.testing.assert_array_equal(x, y)

    def test_state_dict_carries_weights_version(self):
        backend = DistributedBackend(workers=2, seed=0)
        state = backend.state_dict()
        assert state["name"] == "distributed"
        assert state["weights_version"] == 0  # no supernet registered
        DistributedBackend(workers=2).load_state_dict(state)

    def test_resolve_backend_distributed_and_alias(self):
        for spec in ("distributed", "dist"):
            backend = resolve_backend(spec, workers=2)
            assert isinstance(backend, DistributedBackend)
            assert backend.workers == 2

    def test_owned_cluster_released_on_close(self):
        backend = DistributedBackend(workers=2, seed=0, shared=False)
        assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert backend._owned_cluster is not None
        backend.close()
        assert backend._owned_cluster is None


class TestWorkerWireProtocol:
    """WorkerHost against a scripted controller over a socketpair."""

    def _supernet_and_layout(self):
        from repro.core.engine.distributed import _weights_layout
        from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig

        supernet = DlrmSuperNetwork(
            DlrmSupernetConfig(num_tables=NUM_TABLES, seed=0)
        )
        arrays = [p.data for p in supernet.parameters()]
        return supernet, arrays, _weights_layout(arrays)

    def test_stale_task_refetches_weights_before_scoring(self):
        from repro.core.engine.distributed import (
            WorkerHost,
            _HostContext,
            _snapshot_weights,
        )
        from repro.core.engine.transport import recv_message, send_message

        supernet, arrays, layout = self._supernet_and_layout()
        worker_side, controller_side = socket.socketpair()
        worker_side.settimeout(10.0)
        controller_side.settimeout(10.0)
        host = WorkerHost(("127.0.0.1", 1))  # never dials: socket injected
        host._sock = worker_side
        ctx = _HostContext(supernet, layout)
        ctx.applied_version = 1
        context_id = "ctx-stale-test"
        host._contexts[context_id] = ctx
        fresh = [a + 1.0 for a in arrays]
        seen = {}

        def controller():
            message = recv_message(controller_side)
            seen.update(message)
            send_message(
                controller_side,
                {
                    "type": "weights",
                    "context_id": context_id,
                    "version": 3,
                    "data": _snapshot_weights(fresh),
                },
            )

        thread = threading.Thread(target=controller)
        thread.start()
        try:
            ref = RemoteContextRef(
                context_id=context_id,
                spec_segment="",
                weights_segment=None,
                layout=tuple(ctx.layout),
                version=3,
            )
            got = host._context_for_task(ref)
        finally:
            thread.join()
            worker_side.close()
            controller_side.close()
        assert got is ctx
        assert seen["type"] == "fetch_weights" and seen["version"] == 3
        assert ctx.applied_version == 3
        np.testing.assert_array_equal(arrays[0], fresh[0])

    def test_task_overtaking_context_broadcast_refetches(self):
        # A worker that joined mid-search sees a task for a context it
        # never received; it must ask and block until the spec arrives.
        from repro.core.engine import worker as wmod
        from repro.core.engine.distributed import WorkerHost, _snapshot_weights
        from repro.core.engine.transport import recv_message, send_message

        supernet, arrays, layout = self._supernet_and_layout()
        worker_side, controller_side = socket.socketpair()
        worker_side.settimeout(10.0)
        controller_side.settimeout(10.0)
        host = WorkerHost(("127.0.0.1", 1))
        host._sock = worker_side
        context_id = "ctx-late-join"
        spec = pickle.dumps(wmod.worker_spec_for(supernet))

        def controller():
            message = recv_message(controller_side)
            assert message["type"] == "fetch_context"
            send_message(
                controller_side,
                {
                    "type": "context",
                    "context_id": context_id,
                    "spec": spec,
                    "layout": tuple(layout),
                    "version": 1,
                    "weights": _snapshot_weights(arrays),
                },
            )

        thread = threading.Thread(target=controller)
        thread.start()
        try:
            ref = RemoteContextRef(
                context_id=context_id,
                spec_segment="",
                weights_segment=None,
                layout=tuple(layout),
                version=1,
            )
            got = host._context_for_task(ref)
        finally:
            thread.join()
            worker_side.close()
            controller_side.close()
        assert got.applied_version == 1
        np.testing.assert_array_equal(got.param_arrays[0], arrays[0])


class TestDistributedEquivalence:
    """Serial vs cross-host bit-identity: the acceptance criterion."""

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_distributed_matches_serial(self, strategy):
        build = BUILDERS[strategy]
        serial = build(backend="serial").run()
        dist_search = build(backend="distributed", workers=2)
        assert dist_search._remote_active()  # scoring really crosses TCP
        assert_results_identical(serial, dist_search.run(), build_space())

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_distributed_crash_resume_matches_serial(self, tmp_path, strategy):
        build = BUILDERS[strategy]
        reference = build(backend="serial").run()

        store = CheckpointStore(tmp_path, keep_last=2)
        injector = FaultInjector([FaultSpec("crash", step=5)])
        dying = build(backend="distributed", workers=2)
        injector.arm(dying, store)
        with pytest.raises(InjectedCrash):
            run_with_checkpoints(
                dying, store=store, checkpoint_every=2, injector=injector
            )
        del dying

        resumed = run_with_checkpoints(
            build(backend="distributed", workers=2),
            store=store,
            checkpoint_every=2,
        )
        assert resumed.resume.resumed
        assert_results_identical(reference, resumed.result, build_space())

    def test_killed_worker_mid_shard_resubmits_and_matches_serial(self):
        # Two *external* worker processes (the real `repro worker` CLI),
        # one with a task budget that makes it vanish mid-search exactly
        # like a SIGKILLed host; its orphaned tasks must resubmit to the
        # survivor and the result must stay bit-identical to serial.
        serial = build_single(backend="serial").run()
        backend = DistributedBackend(
            workers=2, seed=0, spawn_local=False, shared=False
        )
        env = dict(
            os.environ,
            PYTHONPATH=os.path.join(
                os.path.dirname(__file__), os.pardir, "src"
            ),
        )
        procs = []
        try:
            address = backend.address  # binds the listener
            for extra in (["--max-tasks", "5"], []):
                procs.append(
                    subprocess.Popen(
                        [sys.executable, "-m", "repro", "worker",
                         "--connect", address, *extra],
                        env=env,
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        text=True,
                    )
                )
            assert backend.wait_for_workers(2, timeout=60.0) == 2
            result = build_single(backend=backend).run()
            assert backend.worker_losses >= 1  # the budgeted host died
            assert_results_identical(serial, result, build_space())
            out, err = procs[0].communicate(timeout=30.0)
            assert procs[0].returncode == 0, err
            assert "worker exited after 5 tasks" in out
        finally:
            backend.close()
            for proc in procs:
                if proc.poll() is None:
                    try:
                        proc.wait(timeout=30.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                proc.communicate()

    def test_distributed_backend_state_rides_in_snapshots(self):
        search = build_single(backend="distributed", workers=2)
        state = search.state_dict()
        backend_state = state["backend"]
        assert backend_state["name"] == "distributed"
        assert backend_state["weights_version"] >= 1  # published at build
        fresh = build_single(backend="distributed", workers=2)
        fresh.load_state_dict(state)
        # Restore fast-forwards past the snapshot's version and
        # rebroadcasts, so workers holding pre-crash weights refresh.
        assert (
            fresh.backend.state_dict()["weights_version"]
            > backend_state["weights_version"]
        )

    def test_distributed_unpicklable_supernet_stays_in_process(self):
        def run(backend):
            teacher = CtrTeacher(
                CtrTaskConfig(num_tables=NUM_TABLES, batch_size=8, seed=0)
            )
            search = SingleStepSearch(
                space=build_space(),
                supernet=SurrogateSuperNetwork(
                    lambda a: 1.0 - 0.01 * a["emb0/width_delta"],
                    noise_sigma=0.05,
                    seed=11,
                    split_noise=True,
                ),
                pipeline=SingleStepPipeline(teacher.next_batch),
                reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
                performance_fn=capacity_cost,
                config=SearchConfig(
                    steps=STEPS, num_cores=4, warmup_steps=2, seed=0, backend=backend
                ),
            )
            if isinstance(backend, DistributedBackend):
                assert search._remote_ctx is None
            return search.run()

        assert_results_identical(
            run("serial"), run(DistributedBackend(workers=2, seed=0)), build_space()
        )

    def test_distributed_engine_telemetry(self):
        telemetry = Telemetry()
        result = build_single(
            backend="distributed", workers=2, telemetry=telemetry
        ).run()
        assert len(result.history) == STEPS
        assert telemetry.gauge("engine.hosts").value(backend="distributed") == 2
        assert telemetry.counter("engine.tasks").value(
            stage="score", backend="distributed"
        ) > 0
        spans = telemetry.trace.registry.histogram("span.worker").series()
        labels = [dict(key) for key in spans]
        assert any(
            entry.get("stage") == "score"
            and entry.get("backend") == "distributed"
            and "host" in entry
            for entry in labels
        )
