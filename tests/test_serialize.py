"""Tests for policy and performance-model serialization."""

import numpy as np
import pytest

from repro.core import (
    CategoricalPolicy,
    ReinforceController,
    load_performance_model,
    load_policy,
    policy_from_dict,
    policy_to_dict,
    save_performance_model,
    save_policy,
)
from repro.perfmodel import ArchitectureEncoder, PerformanceModel
from repro.searchspace import Decision, SearchSpace


def small_space(name="s"):
    return SearchSpace(name, [Decision("a", (0, 1, 2)), Decision("b", ("x", "y"))])


def trained_policy():
    controller = ReinforceController(small_space(), learning_rate=0.4, seed=0)
    for _ in range(30):
        samples = []
        for _ in range(4):
            arch, idx = controller.sample()
            samples.append((idx, float(arch["a"] == 2)))
        controller.update(samples)
    return controller.policy


class TestPolicySerialization:
    def test_roundtrip_preserves_logits(self, tmp_path):
        policy = trained_policy()
        path = tmp_path / "policy.json"
        save_policy(policy, path)
        restored = load_policy(small_space(), path)
        for original, loaded in zip(policy.logits, restored.logits):
            np.testing.assert_allclose(original, loaded)

    def test_roundtrip_preserves_argmax(self, tmp_path):
        policy = trained_policy()
        path = tmp_path / "policy.json"
        save_policy(policy, path)
        restored = load_policy(small_space(), path)
        assert restored.most_probable_architecture() == policy.most_probable_architecture()

    def test_space_mismatch_rejected(self):
        payload = policy_to_dict(trained_policy())
        with pytest.raises(ValueError, match="saved for space"):
            policy_from_dict(small_space(name="other"), payload)

    def test_missing_decision_rejected(self):
        payload = policy_to_dict(trained_policy())
        del payload["decisions"]["a"]
        with pytest.raises(ValueError, match="missing decision"):
            policy_from_dict(small_space(), payload)

    def test_wrong_shape_rejected(self):
        payload = policy_to_dict(trained_policy())
        payload["decisions"]["a"] = [0.0, 1.0]  # should be 3 logits
        with pytest.raises(ValueError, match="logits"):
            policy_from_dict(small_space(), payload)

    def test_bad_version_rejected(self):
        payload = policy_to_dict(trained_policy())
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            policy_from_dict(small_space(), payload)


class TestPerformanceModelSerialization:
    def make_model(self, seed=0):
        encoder = ArchitectureEncoder(small_space())
        return PerformanceModel(encoder, hidden_sizes=(8,), seed=seed)

    def test_roundtrip_preserves_predictions(self, tmp_path):
        model = self.make_model(seed=1)
        model.set_normalization(np.array([-3.0, -4.0]), np.array([0.5, 0.7]))
        path = tmp_path / "perf.npz"
        save_performance_model(model, path)
        fresh = self.make_model(seed=99)  # different init
        load_performance_model(fresh, path)
        space = small_space()
        arch = space.default_architecture()
        np.testing.assert_allclose(
            fresh.predict_log_times([arch]), model.predict_log_times([arch])
        )

    def test_shape_mismatch_rejected(self, tmp_path):
        model = self.make_model()
        path = tmp_path / "perf.npz"
        save_performance_model(model, path)
        encoder = ArchitectureEncoder(small_space())
        bigger = PerformanceModel(encoder, hidden_sizes=(16,), seed=0)
        with pytest.raises(ValueError, match="shape"):
            load_performance_model(bigger, path)

    def test_normalization_restored(self, tmp_path):
        model = self.make_model()
        model.set_normalization(np.array([-5.0, -6.0]), np.array([0.3, 0.4]))
        path = tmp_path / "perf.npz"
        save_performance_model(model, path)
        fresh = self.make_model(seed=2)
        load_performance_model(fresh, path)
        np.testing.assert_allclose(fresh.log_mean, [-5.0, -6.0])
        np.testing.assert_allclose(fresh.log_std, [0.3, 0.4])
