"""Tests for the categorical REINFORCE controller."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CategoricalPolicy, ReinforceController
from repro.core.controller import BaselineTracker
from repro.searchspace import Decision, SearchSpace


def small_space():
    return SearchSpace(
        "small",
        [Decision("a", (0, 1, 2)), Decision("b", ("x", "y"))],
    )


class TestCategoricalPolicy:
    def test_initial_distribution_uniform(self):
        policy = CategoricalPolicy(small_space())
        for probs in policy.probabilities():
            np.testing.assert_allclose(probs, 1.0 / len(probs))

    def test_sample_matches_indices(self):
        policy = CategoricalPolicy(small_space())
        arch, indices = policy.sample(np.random.default_rng(0))
        assert policy.space.indices_of(arch).tolist() == indices.tolist()

    def test_log_prob_of_uniform(self):
        policy = CategoricalPolicy(small_space())
        lp = policy.log_prob([0, 0])
        assert lp == pytest.approx(np.log(1 / 3) + np.log(1 / 2))

    def test_entropy_decreases_after_consistent_updates(self):
        policy = CategoricalPolicy(small_space())
        before = policy.entropy()
        target = np.array([2, 1])
        for _ in range(50):
            policy.reinforce_update([(target, 1.0)], learning_rate=0.3)
        assert policy.entropy() < before

    def test_reinforce_moves_towards_rewarded_choice(self):
        policy = CategoricalPolicy(small_space())
        target = np.array([2, 1])
        for _ in range(100):
            policy.reinforce_update([(target, 1.0)], learning_rate=0.3)
        best = policy.most_probable_architecture()
        assert best["a"] == 2 and best["b"] == "y"

    def test_negative_advantage_pushes_away(self):
        policy = CategoricalPolicy(small_space())
        bad = np.array([0, 0])
        for _ in range(100):
            policy.reinforce_update([(bad, -1.0)], learning_rate=0.3)
        probs = policy.probabilities()
        assert probs[0][0] < 1 / 3
        assert probs[1][0] < 1 / 2

    def test_update_with_no_samples_is_noop(self):
        policy = CategoricalPolicy(small_space())
        before = [logit.copy() for logit in policy.logits]
        policy.reinforce_update([], learning_rate=0.3)
        for a, b in zip(before, policy.logits):
            np.testing.assert_array_equal(a, b)

    def test_cross_shard_update_averages(self):
        """Two opposite samples with equal advantage cancel on decision b."""
        policy = CategoricalPolicy(small_space())
        policy.reinforce_update(
            [(np.array([0, 0]), 1.0), (np.array([0, 1]), 1.0)],
            learning_rate=0.5,
        )
        probs_b = policy.probabilities()[1]
        np.testing.assert_allclose(probs_b, [0.5, 0.5])

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_probabilities_always_normalized(self, seed):
        policy = CategoricalPolicy(small_space())
        rng = np.random.default_rng(seed)
        for _ in range(10):
            _, idx = policy.sample(rng)
            policy.reinforce_update([(idx, float(rng.normal()))], 0.5)
        for probs in policy.probabilities():
            assert probs.sum() == pytest.approx(1.0)
            assert np.all(probs >= 0)


class TestBaselineTracker:
    def test_first_reward_has_full_advantage(self):
        tracker = BaselineTracker()
        assert tracker.advantage(0.5) == 0.5

    def test_baseline_tracks_mean(self):
        tracker = BaselineTracker(momentum=0.0)
        tracker.update([1.0, 3.0])
        assert tracker.value == pytest.approx(2.0)
        assert tracker.advantage(2.5) == pytest.approx(0.5)

    def test_momentum_smoothing(self):
        tracker = BaselineTracker(momentum=0.5)
        tracker.update([2.0])
        tracker.update([4.0])
        assert tracker.value == pytest.approx(3.0)

    def test_empty_update(self):
        tracker = BaselineTracker()
        tracker.update([])
        assert tracker.value is None


class TestReinforceController:
    def test_learns_a_planted_optimum(self):
        """Controller converges on the decision combination with max reward."""
        space = small_space()
        controller = ReinforceController(space, learning_rate=0.4, seed=0)
        target = {"a": 1, "b": "x"}
        for _ in range(150):
            samples = []
            for _ in range(4):
                arch, idx = controller.sample()
                reward = sum(float(arch[k] == v) for k, v in target.items())
                samples.append((idx, reward))
            controller.update(samples)
        best = controller.best_architecture()
        assert best["a"] == 1 and best["b"] == "x"

    def test_sample_many(self):
        controller = ReinforceController(small_space(), seed=1)
        samples = controller.sample_many(5)
        assert len(samples) == 5

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            ReinforceController(small_space(), learning_rate=0.0)

    def test_entropy_reported(self):
        controller = ReinforceController(small_space())
        assert controller.entropy() == pytest.approx(np.log(3) + np.log(2))


class TestWarmStart:
    def test_resume_continues_from_checkpoint(self):
        space = small_space()
        first = ReinforceController(space, learning_rate=0.4, seed=0)
        target = {"a": 2, "b": "y"}
        for _ in range(80):
            samples = []
            for _ in range(4):
                arch, idx = first.sample()
                samples.append((idx, sum(float(arch[k] == v) for k, v in target.items())))
            first.update(samples)
        resumed = ReinforceController(space, learning_rate=0.4, seed=1)
        resumed.warm_start(first.policy)
        assert resumed.best_architecture() == first.best_architecture()
        assert resumed.entropy() == pytest.approx(first.entropy())

    def test_wrong_space_rejected(self):
        other = SearchSpace("other", [Decision("z", (0, 1, 2, 3))])
        controller = ReinforceController(small_space())
        with pytest.raises(ValueError, match="different search space"):
            controller.warm_start(CategoricalPolicy(other))
