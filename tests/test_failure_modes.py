"""Failure-injection tests: the system fails loudly, not silently."""

import numpy as np
import pytest

from repro.core import (
    PerformanceObjective,
    ReinforceController,
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    relu_reward,
)
from repro.data import (
    CtrTaskConfig,
    CtrTeacher,
    NullSource,
    PipelineExhausted,
    PipelineProtocolError,
    SingleStepPipeline,
)
from repro.graph import OpGraph, OpNode, ops
from repro.hardware import TPU_V4, simulate
from repro.searchspace import Decision, DlrmSpaceConfig, SearchSpace, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig


def tiny_space():
    return SearchSpace("tiny", [Decision("a", (0, 1))])


class TestControllerGuards:
    def test_nan_reward_rejected(self):
        controller = ReinforceController(tiny_space())
        _, idx = controller.sample()
        with pytest.raises(ValueError, match="non-finite"):
            controller.update([(idx, float("nan"))])

    def test_inf_reward_rejected(self):
        controller = ReinforceController(tiny_space())
        _, idx = controller.sample()
        with pytest.raises(ValueError, match="non-finite"):
            controller.update([(idx, float("inf"))])

    def test_search_surfaces_nan_quality(self):
        """A broken quality signal aborts the search instead of silently
        corrupting the policy."""
        search = SingleStepSearch(
            space=tiny_space(),
            supernet=SurrogateSuperNetwork(lambda arch: float("nan")),
            pipeline=SingleStepPipeline(NullSource().next_batch),
            reward_fn=relu_reward([]),
            performance_fn=lambda arch: {},
            config=SearchConfig(steps=3, num_cores=2, warmup_steps=0),
        )
        with pytest.raises(ValueError, match="non-finite"):
            search.run()


class TestRewardGuards:
    def test_missing_metric_raises(self):
        reward = relu_reward([PerformanceObjective("latency", 1.0, -1.0)])
        with pytest.raises(KeyError, match="latency"):
            reward(0.5, {"throughput": 2.0})


class TestPipelineMisuse:
    def test_double_training_on_one_batch_detected(self):
        """A buggy training loop that reuses a batch is caught."""
        teacher = CtrTeacher(CtrTaskConfig(num_tables=2, batch_size=8))
        pipeline = SingleStepPipeline(teacher.next_batch)
        batch = pipeline.next_batch()
        pipeline.mark_policy_use(batch)
        pipeline.mark_weight_use(batch)
        with pytest.raises(PipelineProtocolError):
            pipeline.mark_weight_use(batch)

    def test_search_on_exhausted_pipeline_raises(self):
        teacher = CtrTeacher(CtrTaskConfig(num_tables=2, batch_size=8))
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=2))
        search = SingleStepSearch(
            space=space,
            supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=2)),
            pipeline=SingleStepPipeline(teacher.next_batch, max_batches=4),
            reward_fn=relu_reward([]),
            performance_fn=lambda arch: {},
            config=SearchConfig(steps=10, num_cores=2, warmup_steps=0),
        )
        with pytest.raises(PipelineExhausted):
            search.run()


class TestGraphGuards:
    def test_cycle_rejected(self):
        graph = OpGraph("cyclic")
        graph.add(OpNode("a", "dense", flops=1.0))
        graph.add(OpNode("b", "dense", flops=1.0), deps=["a"])
        with pytest.raises((ValueError, KeyError)):
            graph.add(OpNode("a", "dense"), deps=["b"])  # duplicate/cycle

    def test_simulating_empty_graph_is_zero_time(self):
        result = simulate(OpGraph("empty"), TPU_V4)
        assert result.total_time_s == 0.0
        assert result.total_flops == 0.0

    def test_infinite_compute_guard(self):
        """A positive-FLOPs op whose dims kill the compute rate still
        yields a finite (memory/overhead-bounded) or inf time, never NaN."""
        graph = OpGraph("odd")
        graph.add(
            OpNode("weird", "dense", flops=1e9, bytes_in=8.0, unit="mxu", dims=(1, 1, 1))
        )
        result = simulate(graph, TPU_V4)
        assert not np.isnan(result.total_time_s)


class TestSupernetGuards:
    def test_architecture_missing_decisions_fails(self):
        """An arch from a smaller space lacks the supernet's decisions."""
        net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=4))
        small_space = dlrm_search_space(DlrmSpaceConfig(num_tables=1, num_dense_stacks=2))
        arch = small_space.sample(np.random.default_rng(0))
        teacher = CtrTeacher(CtrTaskConfig(num_tables=4, batch_size=4))
        batch = teacher.next_batch()
        with pytest.raises(KeyError):
            net(arch, batch.inputs)
