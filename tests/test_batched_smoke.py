"""Tiny end-to-end smoke run of the batched-execution benchmark paths.

Runs ``benchmarks/bench_batched_exec.py``'s measurement functions at a
configuration small enough for the tier-1 budget, asserting structure
(not speedups — those belong to the full benchmark run, which needs
realistic sizes to be meaningful).  Nothing is written under
``benchmarks/results/``.
"""

import pytest

from benchmarks.bench_batched_exec import run_grouping, run_pricing

pytestmark = pytest.mark.slow


def test_pricing_smoke():
    pricing = run_pricing(shard_candidates=32)
    assert pricing["shard_candidates"] == 32
    assert pricing["batched_throughput"] > 0
    assert pricing["sequential_throughput"] > 0
    assert pricing["speedup"] > 0


def test_grouping_smoke():
    grouping = run_grouping(steps=4, cores=4)
    assert grouping["grouped_supernet_seconds"] > 0
    assert grouping["ungrouped_supernet_seconds"] > 0
    # run_grouping already asserted the two trajectories agree.
    assert set(grouping["grouped_stage_seconds"]) == set(
        grouping["ungrouped_stage_seconds"]
    )
