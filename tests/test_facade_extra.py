"""Extra facade and search-config coverage."""

import numpy as np
import pytest

from repro.core import H2ONas, PerformanceObjective, SearchConfig
from repro.data import CtrTaskConfig, CtrTeacher, PipelineExhausted
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig


def build(max_batches=None, reward_kind="relu"):
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=2))
    teacher = CtrTeacher(CtrTaskConfig(num_tables=2, batch_size=16))
    return H2ONas(
        space=space,
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=2)),
        batch_source=teacher.next_batch,
        performance_fn=lambda arch: {"step_time": 1.0},
        objectives=[PerformanceObjective("step_time", 1.0, -0.5)],
        reward_kind=reward_kind,
        config=SearchConfig(steps=4, num_cores=2, warmup_steps=1),
        max_batches=max_batches,
    )


class TestFacadeExtra:
    def test_absolute_reward_kind(self):
        nas = build(reward_kind="absolute")
        assert nas.reward_fn.kind == "absolute"
        result = nas.search()
        nas.space.validate(result.final_architecture)

    def test_max_batches_enforced(self):
        nas = build(max_batches=4)
        with pytest.raises(PipelineExhausted):
            nas.search()  # 4 steps x 2 cores = 8 > 4 budget

    def test_pipeline_exposed(self):
        nas = build()
        nas.search()
        assert nas.pipeline.batches_issued == 8

    def test_eval_runtime_exposed(self):
        nas = build()
        result = nas.search()
        assert nas.eval_runtime is nas.search_algorithm.runtime
        stats = result.eval_stats
        assert stats is not None and stats.cache_enabled
        assert stats.cache_hits + stats.cache_misses == 8  # steps x cores
        for stage in ("sample", "score", "price", "weight_update"):
            assert stats.stage_seconds[stage] >= 0.0
