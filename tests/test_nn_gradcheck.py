"""Finite-difference gradient sweep over every op, loss, and layer.

Every differentiable path in :mod:`repro.nn` — tensor primitives, the
fused layer kernels, the fused losses, and the layers themselves — is
pinned against central finite differences.  The sweep doubles as the
regression suite for the bug fixes that rode along with the autograd
overhaul:

* ``Tensor.__matmul__`` backward for batched (ndim >= 3) matrix @ 1-D
  vector (and every other rank combination);
* ``bce_with_logits`` gradient flow at large logits (the old
  ``log(sigmoid + 1e-9)`` formulation flat-lined past |x| ~ 20);
* ``Module._collect`` traversal of dict/Mapping attributes.
"""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    LayerNorm,
    LowRankDense,
    MLP,
    MaskedDense,
    MaskedEmbedding,
    Module,
    Tensor,
    bce_with_logits,
    concatenate,
    dense_act,
    masked_gather,
    mse,
    softmax_cross_entropy,
    stack_mean,
)
from repro.nn import layers as nn_layers
from repro.nn.fused import ACT_KERNELS


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def assert_gradcheck(build, *arrays, rtol=1e-4, atol=1e-6):
    """Check autograd gradients of ``build(*tensors).sum()`` against
    central differences for every input array."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.sum().backward()
    for tensor, array in zip(tensors, arrays):
        expected = numerical_grad(
            lambda: float(build(*[Tensor(a) for a in arrays]).data.sum()), array
        )
        np.testing.assert_allclose(
            tensor.grad, expected, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch for input of shape {array.shape}",
        )


def rand(*shape, seed=0, scale=1.0):
    return np.random.default_rng(seed).normal(0.0, scale, size=shape)


class TestPrimitiveOps:
    def test_add_broadcast(self):
        assert_gradcheck(lambda a, b: a + b, rand(3, 4), rand(4, seed=1))

    def test_mul_broadcast(self):
        assert_gradcheck(lambda a, b: a * b, rand(3, 4), rand(4, seed=1))

    def test_div(self):
        assert_gradcheck(
            lambda a, b: a / b, rand(3, 4), np.abs(rand(3, 4, seed=1)) + 1.0
        )

    def test_pow(self):
        assert_gradcheck(lambda a: a**3, rand(2, 3))

    def test_neg_sub(self):
        assert_gradcheck(lambda a, b: a - b, rand(3), rand(3, seed=1))

    def test_exp_log(self):
        assert_gradcheck(lambda a: (a.exp() + 1.0).log(), rand(2, 3))

    def test_sum_axis(self):
        assert_gradcheck(lambda a: a.sum(axis=0) * rand(4, seed=9), rand(3, 4))

    def test_reshape_transpose(self):
        assert_gradcheck(
            lambda a: a.reshape((4, 3)).transpose((1, 0)) * rand(3, 4, seed=9),
            rand(2, 6),
        )

    def test_mask(self):
        mask = np.array([1.0, 0.0, 1.0, 0.0])
        assert_gradcheck(lambda a: a.mask(mask) * rand(3, 4, seed=9), rand(3, 4))

    def test_gather_rows(self):
        idx = np.array([2, 0, 2, 1])
        assert_gradcheck(
            lambda a: a.gather_rows(idx) * rand(4, 3, seed=9), rand(3, 3)
        )

    def test_concatenate(self):
        assert_gradcheck(
            lambda a, b: concatenate([a, b], axis=-1) * rand(2, 5, seed=9),
            rand(2, 3),
            rand(2, 2, seed=1),
        )

    def test_stack_mean(self):
        assert_gradcheck(
            lambda a, b, c: stack_mean([a, b, c]),
            rand(1), rand(1, seed=1), rand(1, seed=2),
        )

    def test_softmax(self):
        assert_gradcheck(
            lambda a: a.softmax(axis=-1) * rand(3, 5, seed=9), rand(3, 5)
        )


class TestActivations:
    @pytest.mark.parametrize("name", sorted(set(ACT_KERNELS) - {"linear"}))
    def test_tensor_method(self, name):
        assert_gradcheck(
            lambda a: getattr(a, name)(), rand(3, 4) * 1.5
        )


class TestMatmulRankMatrix:
    """Every rank combination of ``a @ b``, including the batched
    matrix @ vector case whose backward used to collapse the batch axes
    incorrectly."""

    CASES = [
        ((4,), (4,)),          # vec @ vec -> scalar
        ((3, 4), (4,)),        # mat @ vec
        ((4,), (4, 5)),        # vec @ mat
        ((3, 4), (4, 5)),      # mat @ mat
        ((2, 3, 4), (4,)),     # batched mat @ vec (the fixed case)
        ((2, 5, 3, 4), (4,)),  # doubly-batched mat @ vec
        ((4,), (2, 4, 5)),     # vec @ batched mat
        ((2, 3, 4), (4, 5)),   # batched mat @ mat (broadcast b)
        ((3, 4), (2, 4, 5)),   # mat @ batched mat (broadcast a)
        ((2, 3, 4), (2, 4, 5)),  # batched mat @ batched mat
    ]

    @pytest.mark.parametrize("a_shape,b_shape", CASES)
    def test_gradients(self, a_shape, b_shape):
        a = rand(*a_shape)
        b = rand(*b_shape, seed=1)
        out_shape = (np.zeros(a_shape) @ np.zeros(b_shape)).shape
        weights = rand(*out_shape, seed=9) if out_shape else 1.0
        assert_gradcheck(lambda x, y: (x @ y) * weights, a, b)


class TestLosses:
    def test_mse(self):
        targets = rand(4, 2, seed=1)
        assert_gradcheck(lambda p: mse(p, targets), rand(4, 2))

    def test_bce_with_logits(self):
        targets = (rand(5, 1, seed=1) > 0).astype(np.float64)
        assert_gradcheck(lambda x: bce_with_logits(x, targets), rand(5, 1))

    def test_bce_large_logits_value_is_finite_and_linear(self):
        # max(x,0) - x*y + log1p(exp(-|x|)): a confident wrong answer at
        # logit 40 must cost ~40 nats, not saturate at -log(1e-9)~20.7.
        logits = Tensor(np.array([[40.0], [-40.0]]), requires_grad=True)
        targets = np.array([[0.0], [1.0]])
        loss = bce_with_logits(logits, targets)
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(40.0, rel=1e-12)

    def test_bce_large_logits_gradient_flows(self):
        # The old sigmoid+log(p+eps) path returned exactly zero gradient
        # here; the stable form gives the full (sigmoid(x) - y) / n.
        logits = Tensor(np.array([[40.0], [-40.0]]), requires_grad=True)
        targets = np.array([[0.0], [1.0]])
        bce_with_logits(logits, targets).backward()
        np.testing.assert_allclose(logits.grad, [[0.5], [-0.5]], atol=1e-12)

    def test_softmax_cross_entropy(self):
        labels = np.array([2, 0, 1, 2])
        assert_gradcheck(
            lambda x: softmax_cross_entropy(x, labels), rand(4, 3)
        )

    def test_softmax_cross_entropy_extreme_logits(self):
        logits = Tensor(np.array([[800.0, 0.0, -800.0]]), requires_grad=True)
        loss = softmax_cross_entropy(logits, np.array([2]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(logits.grad))


class TestFusedKernels:
    @pytest.mark.parametrize("act", sorted(ACT_KERNELS))
    def test_dense_act_matches_finite_differences(self, act):
        x, w, b = rand(5, 3), rand(3, 4, seed=1), rand(4, seed=2)
        wm = np.zeros((3, 4)); wm[:2, :3] = 1.0
        bm = np.zeros(4); bm[:3] = 1.0
        assert_gradcheck(
            lambda xt, wt, bt: dense_act(
                xt, wt, bt, act, weight_mask=wm, bias_mask=bm
            ),
            x, w, b,
        )

    def test_dense_act_1d_input(self):
        assert_gradcheck(
            lambda xt, wt, bt: dense_act(xt, wt, bt, "relu"),
            rand(3), rand(3, 4, seed=1), rand(4, seed=2),
        )

    def test_dense_act_3d_input(self):
        assert_gradcheck(
            lambda xt, wt, bt: dense_act(xt, wt, bt, "tanh"),
            rand(2, 5, 3), rand(3, 4, seed=1), rand(4, seed=2),
        )

    def test_dense_act_matches_composed_path(self):
        x, w, b = rand(5, 3), rand(3, 4, seed=1), rand(4, seed=2)
        wm = np.zeros((3, 4)); wm[:2, :3] = 1.0
        bm = np.zeros(4); bm[:3] = 1.0

        xt, wt, bt = (Tensor(a, requires_grad=True) for a in (x, w, b))
        dense_act(xt, wt, bt, "swish", weight_mask=wm, bias_mask=bm).sum().backward()

        xc, wc, bc = (Tensor(a, requires_grad=True) for a in (x, w, b))
        ((xc @ wc.mask(wm)) + bc.mask(bm)).swish().sum().backward()

        for fused, composed in ((xt, xc), (wt, wc), (bt, bc)):
            np.testing.assert_allclose(fused.grad, composed.grad, rtol=1e-12)

    def test_masked_gather_matches_finite_differences(self):
        table = rand(6, 4)
        idx = np.array([0, 9, 3, 7])  # out-of-range ids exercise the wrap
        mask = np.array([1.0, 1.0, 0.0, 0.0])
        assert_gradcheck(
            lambda t: masked_gather(t, idx, mask, 5) * rand(4, 4, seed=9),
            table,
        )

    def test_masked_gather_matches_composed_path(self):
        table = rand(6, 4)
        idx = np.array([0, 9, 3, 7])
        mask = np.array([1.0, 1.0, 0.0, 0.0])

        tf = Tensor(table, requires_grad=True)
        masked_gather(tf, idx, mask, 5).sum().backward()
        tc = Tensor(table, requires_grad=True)
        tc.mask(mask).gather_rows(idx % 5).sum().backward()
        np.testing.assert_allclose(tf.grad, tc.grad, rtol=1e-12)

    @pytest.mark.parametrize("act", sorted(ACT_KERNELS))
    def test_dense_act_sliced_matches_finite_differences(self, act):
        assert_gradcheck(
            lambda xt, wt, bt: dense_act(xt, wt, bt, act, active=(2, 3)),
            rand(5, 3), rand(3, 4, seed=1), rand(4, seed=2),
        )

    @pytest.mark.parametrize("act", ["relu", "sigmoid", "swish"])
    def test_dense_act_sliced_matches_masked_path(self, act):
        # act(0) != 0 for sigmoid: the fill value of the inactive output
        # columns must match what the masked matmul produces there.
        x, w, b = rand(5, 3), rand(3, 4, seed=1), rand(4, seed=2)
        wm = np.zeros((3, 4)); wm[:2, :3] = 1.0
        bm = np.zeros(4); bm[:3] = 1.0

        xs, ws, bs = (Tensor(a, requires_grad=True) for a in (x, w, b))
        sliced = dense_act(xs, ws, bs, act, active=(2, 3))
        sliced.sum().backward()
        xm, wm_t, bm_t = (Tensor(a, requires_grad=True) for a in (x, w, b))
        masked = dense_act(xm, wm_t, bm_t, act, weight_mask=wm, bias_mask=bm)
        masked.sum().backward()

        np.testing.assert_allclose(sliced.data, masked.data, rtol=1e-12)
        for a, b_ in ((xs, xm), (ws, wm_t), (bs, bm_t)):
            np.testing.assert_allclose(a.grad, b_.grad, rtol=1e-12)
        assert np.all(ws.grad[2:, :] == 0) and np.all(ws.grad[:, 3:] == 0)

    def test_dense_act_sliced_1d_and_3d_inputs(self):
        assert_gradcheck(
            lambda xt, wt, bt: dense_act(xt, wt, bt, "relu", active=(2, 3)),
            rand(3), rand(3, 4, seed=1), rand(4, seed=2),
        )
        assert_gradcheck(
            lambda xt, wt, bt: dense_act(xt, wt, bt, "tanh", active=(2, 3)),
            rand(2, 5, 3), rand(3, 4, seed=1), rand(4, seed=2),
        )

    def test_dense_act_rejects_active_plus_mask(self):
        x, w = Tensor(rand(5, 3)), Tensor(rand(3, 4, seed=1))
        with pytest.raises(ValueError, match="not both"):
            dense_act(x, w, None, "relu", weight_mask=np.ones((3, 4)), active=(2, 3))

    def test_masked_gather_sliced_matches_masked_path(self):
        table = rand(6, 4)
        idx = np.array([0, 9, 3, 7])
        mask = np.array([1.0, 1.0, 0.0, 0.0])

        ts = Tensor(table, requires_grad=True)
        sliced = masked_gather(ts, idx, None, 5, active_width=2)
        sliced.sum().backward()
        tm = Tensor(table, requires_grad=True)
        masked = masked_gather(tm, idx, mask, 5)
        masked.sum().backward()

        np.testing.assert_allclose(sliced.data, masked.data, rtol=1e-12)
        np.testing.assert_allclose(ts.grad, tm.grad, rtol=1e-12)
        assert np.all(ts.grad[:, 2:] == 0)


class TestLayers:
    def _param_gradcheck(self, module, run, rtol=1e-4, atol=1e-6):
        """Check gradients of ``run().sum()`` w.r.t. every parameter."""
        module.zero_grad()
        run().sum().backward()
        for param in module.parameters():
            grad = param.grad if param.grad is not None else np.zeros_like(param.data)
            expected = numerical_grad(lambda: float(run().data.sum()), param.data)
            np.testing.assert_allclose(grad, expected, rtol=rtol, atol=atol)

    def test_dense(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 4, rng, activation_name="gelu")
        x = Tensor(rand(5, 3))
        self._param_gradcheck(layer, lambda: layer(x))

    def test_masked_dense_active_widths(self):
        rng = np.random.default_rng(0)
        layer = MaskedDense(4, 6, rng, activation_name="swish")
        x = Tensor(rand(5, 4))
        self._param_gradcheck(
            layer, lambda: layer(x, active_in=3, active_out=4)
        )

    def test_lowrank_dense(self):
        rng = np.random.default_rng(0)
        layer = LowRankDense(4, 6, 4, rng, activation_name="relu")
        x = Tensor(rand(5, 4))
        self._param_gradcheck(
            layer, lambda: layer(x, active_in=3, active_out=4, active_rank=2)
        )

    def test_masked_embedding_with_wrap(self):
        rng = np.random.default_rng(0)
        layer = MaskedEmbedding(6, 4, rng)
        idx = np.array([0, 11, 3, 5])
        self._param_gradcheck(
            layer, lambda: layer(idx, active_width=3, wrap=4) * rand(4, 4, seed=9)
        )

    def test_layernorm(self):
        layer = LayerNorm(4)
        x = Tensor(rand(5, 4))
        self._param_gradcheck(layer, lambda: layer(x) * rand(5, 4, seed=9))

    def test_layernorm_active_width(self):
        layer = LayerNorm(6)
        x = Tensor(rand(3, 6) * np.r_[np.ones(4), np.zeros(2)])
        self._param_gradcheck(
            layer, lambda: layer(x, active_width=4) * rand(3, 6, seed=9)
        )

    def test_mlp(self):
        rng = np.random.default_rng(0)
        mlp = MLP(3, [5], 2, rng)
        x = Tensor(rand(4, 3))
        self._param_gradcheck(mlp, lambda: mlp(x) * rand(4, 2, seed=9))

    def test_composed_path_still_checks(self, monkeypatch):
        monkeypatch.setattr(nn_layers, "FUSED_KERNELS", False)
        rng = np.random.default_rng(0)
        layer = MaskedDense(4, 6, rng, activation_name="relu")
        x = Tensor(rand(5, 4))
        self._param_gradcheck(
            layer, lambda: layer(x, active_in=3, active_out=4)
        )


class TestModuleCollect:
    """Regression: dict-valued attributes must contribute parameters."""

    def test_dict_attribute_parameters_collected(self):
        class WithDict(Module):
            def __init__(self):
                rng = np.random.default_rng(0)
                self.tables = {
                    "a": Dense(2, 3, rng),
                    "b": Tensor(np.ones(4), requires_grad=True),
                }

        params = WithDict().parameters()
        # Dense weight + bias, plus the bare tensor.
        assert len(params) == 3

    def test_nested_list_of_modules_collected(self):
        class WithNested(Module):
            def __init__(self):
                rng = np.random.default_rng(0)
                self.blocks = [[Dense(2, 2, rng, use_bias=False)] for _ in range(3)]

        assert len(WithNested().parameters()) == 3

    def test_shared_tensor_deduplicated(self):
        shared = Tensor(np.ones(2), requires_grad=True)

        class WithShared(Module):
            def __init__(self):
                self.by_scale = {0.5: shared, 1.0: shared}

        assert WithShared().parameters() == [shared]

    def test_dlrm_embeddings_reach_optimizer(self):
        from repro.supernet.dlrm import DlrmSuperNetwork

        net = DlrmSuperNetwork()
        params = set(map(id, net.parameters()))
        for per_scale in net.embeddings:
            for table in per_scale.values():
                assert id(table.table) in params
