"""Tests for layers: masking semantics are the weight-sharing contract."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    Dense,
    LowRankDense,
    MLP,
    MaskedDense,
    MaskedEmbedding,
    SGD,
    Sequential,
    Tensor,
    activation,
    bce_with_logits,
    mse,
    softmax_cross_entropy,
)


def rng():
    return np.random.default_rng(1234)


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, rng())
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_bias_optional(self):
        layer = Dense(4, 3, rng(), use_bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Dense(0, 3, rng())

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            Dense(4, 3, rng(), activation_name="sine")

    def test_trains_toward_target(self):
        layer = Dense(2, 1, rng(), activation_name="linear")
        opt = SGD(layer.parameters(), lr=0.1)
        x = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [0.0, 0.0]])
        y = x.sum(axis=1, keepdims=True)
        losses = []
        for _ in range(200):
            opt.zero_grad()
            loss = mse(layer(Tensor(x)), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.01 < losses[0] or losses[-1] < losses[0] * 0.1


class TestMaskedDense:
    def test_inactive_outputs_are_zero(self):
        layer = MaskedDense(8, 6, rng())
        out = layer(Tensor(np.ones((3, 8))), active_in=4, active_out=2)
        np.testing.assert_allclose(out.data[:, 2:], 0.0)

    def test_small_width_matches_submatrix(self):
        layer = MaskedDense(8, 6, rng(), activation_name="linear", use_bias=False)
        x = np.zeros((2, 8))
        x[:, :4] = np.random.default_rng(7).normal(size=(2, 4))
        out = layer(Tensor(x), active_in=4, active_out=3)
        expected = x[:, :4] @ layer.weight.data[:4, :3]
        np.testing.assert_allclose(out.data[:, :3], expected)

    def test_gradient_only_on_active_block(self):
        layer = MaskedDense(8, 6, rng(), activation_name="linear")
        out = layer(Tensor(np.ones((2, 8))), active_in=4, active_out=2)
        out.sum().backward()
        grad = layer.weight.grad
        assert np.all(grad[4:, :] == 0)
        assert np.all(grad[:, 2:] == 0)
        assert np.any(grad[:4, :2] != 0)

    def test_weight_sharing_across_candidates(self):
        """Two candidate widths must read the same underlying weights."""
        layer = MaskedDense(8, 6, rng(), activation_name="linear", use_bias=False)
        x = np.zeros((1, 8))
        x[:, :2] = 1.0
        narrow = layer(Tensor(x), active_in=2, active_out=2)
        wide = layer(Tensor(x), active_in=2, active_out=6)
        np.testing.assert_allclose(narrow.data[:, :2], wide.data[:, :2])

    def test_active_bounds_validated(self):
        layer = MaskedDense(8, 6, rng())
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((1, 8))), active_in=9)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((1, 8))), active_out=0)

    @given(st.integers(1, 8), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_any_active_width_is_valid(self, ain, aout):
        layer = MaskedDense(8, 6, rng(), activation_name="linear")
        out = layer(Tensor(np.ones((2, 8))), active_in=ain, active_out=aout)
        assert out.shape == (2, 6)
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data[:, aout:], 0.0)


class TestLowRankDense:
    def test_rank_masking_shrinks_capacity(self):
        layer = LowRankDense(6, 6, 4, rng(), activation_name="linear")
        x = Tensor(np.random.default_rng(3).normal(size=(2, 6)))
        full = layer(x, active_rank=4)
        rank1 = layer(x, active_rank=1)
        assert not np.allclose(full.data, rank1.data)

    def test_rank_one_matches_outer_product(self):
        layer = LowRankDense(4, 3, 2, rng(), activation_name="linear")
        layer.bias.data[:] = 0.0
        x = np.random.default_rng(5).normal(size=(2, 4))
        out = layer(Tensor(x), active_rank=1)
        expected = (x @ layer.factor_u.data[:, :1]) @ layer.factor_v.data[:1, :]
        np.testing.assert_allclose(out.data, expected)

    def test_invalid_rank(self):
        layer = LowRankDense(4, 3, 2, rng())
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((1, 4))), active_rank=3)

    def test_gradient_respects_rank_mask(self):
        layer = LowRankDense(4, 3, 2, rng(), activation_name="linear")
        out = layer(Tensor(np.ones((2, 4))), active_rank=1)
        out.sum().backward()
        assert np.all(layer.factor_u.grad[:, 1:] == 0)
        assert np.all(layer.factor_v.grad[1:, :] == 0)


class TestMaskedEmbedding:
    def test_lookup_shape(self):
        emb = MaskedEmbedding(10, 6, rng())
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_width_masking(self):
        emb = MaskedEmbedding(10, 6, rng())
        out = emb(np.array([0, 1]), active_width=3)
        np.testing.assert_allclose(out.data[:, 3:], 0.0)
        np.testing.assert_allclose(out.data[:, :3], emb.table.data[[0, 1], :3])

    def test_shared_prefix_across_widths(self):
        emb = MaskedEmbedding(10, 6, rng())
        narrow = emb(np.array([5]), active_width=2)
        wide = emb(np.array([5]), active_width=6)
        np.testing.assert_allclose(narrow.data[:, :2], wide.data[:, :2])

    def test_out_of_range_indices_wrap(self):
        emb = MaskedEmbedding(4, 3, rng())
        out = emb(np.array([7]))  # 7 % 4 == 3
        np.testing.assert_allclose(out.data[0], emb.table.data[3])

    def test_gradient_hits_only_looked_up_rows(self):
        emb = MaskedEmbedding(10, 4, rng())
        out = emb(np.array([2, 2, 7]), active_width=2)
        out.sum().backward()
        grad = emb.table.grad
        assert np.all(grad[[0, 1, 3, 4, 5, 6, 8, 9]] == 0)
        assert np.all(grad[:, 2:] == 0)
        np.testing.assert_allclose(grad[2, :2], 2.0)

    def test_invalid_width(self):
        emb = MaskedEmbedding(4, 3, rng())
        with pytest.raises(ValueError):
            emb(np.array([0]), active_width=4)


class TestMLPAndSequential:
    def test_mlp_shapes(self):
        net = MLP(5, [16, 8], 2, rng())
        out = net(Tensor(np.ones((3, 5))))
        assert out.shape == (3, 2)

    def test_sequential_composition(self):
        net = Sequential([Dense(4, 8, rng()), Dense(8, 2, rng())])
        assert net(Tensor(np.ones((2, 4)))).shape == (2, 2)

    def test_parameter_collection_dedupes(self):
        net = MLP(3, [4], 1, rng())
        params = net.parameters()
        assert len(params) == 4  # two layers x (weight, bias)
        assert len({id(p) for p in params}) == len(params)

    def test_num_parameters(self):
        net = MLP(3, [4], 1, rng())
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 1 + 1

    def test_mlp_fits_nonlinear_function(self):
        gen = np.random.default_rng(0)
        x = gen.uniform(-1, 1, size=(256, 2))
        y = (np.sin(3 * x[:, 0]) * x[:, 1]).reshape(-1, 1)
        net = MLP(2, [32, 32], 1, rng())
        opt = Adam(net.parameters(), lr=0.01)
        first = None
        for step in range(300):
            opt.zero_grad()
            loss = mse(net(Tensor(x)), y)
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
        assert loss.item() < first * 0.2


class TestLosses:
    def test_bce_perfect_prediction_small(self):
        logits = Tensor(np.array([[10.0], [-10.0]]))
        loss = bce_with_logits(logits, np.array([[1.0], [0.0]]))
        assert loss.item() < 0.01

    def test_bce_wrong_prediction_large(self):
        logits = Tensor(np.array([[10.0], [-10.0]]))
        loss = bce_with_logits(logits, np.array([[0.0], [1.0]]))
        assert loss.item() > 2.0

    def test_softmax_ce_matches_manual(self):
        logits_val = np.array([[2.0, 1.0, 0.1]])
        labels = np.array([0])
        loss = softmax_cross_entropy(Tensor(logits_val), labels)
        probs = np.exp(logits_val) / np.exp(logits_val).sum()
        np.testing.assert_allclose(loss.item(), -np.log(probs[0, 0]), rtol=1e-6)

    def test_softmax_ce_gradient_direction(self):
        logits = Tensor(np.array([[0.0, 0.0]]), requires_grad=True)
        softmax_cross_entropy(logits, np.array([1])).backward()
        assert logits.grad[0, 0] > 0  # wrong class pushed down
        assert logits.grad[0, 1] < 0  # right class pushed up

    def test_activation_lookup(self):
        assert activation("relu")(Tensor(np.array([-1.0, 2.0]))).data.tolist() == [0.0, 2.0]


class TestOptimizers:
    def test_sgd_momentum_accelerates(self):
        w_plain = Tensor(np.array([10.0]), requires_grad=True)
        w_mom = Tensor(np.array([10.0]), requires_grad=True)
        plain = SGD([w_plain], lr=0.01)
        mom = SGD([w_mom], lr=0.01, momentum=0.9)
        for _ in range(50):
            for w, opt in [(w_plain, plain), (w_mom, mom)]:
                opt.zero_grad()
                (w * w).sum().backward()
                opt.step()
        assert abs(w_mom.item()) < abs(w_plain.item())

    def test_adam_converges_on_quadratic(self):
        w = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            (w * w).sum().backward()
            opt.step()
        assert np.all(np.abs(w.data) < 0.05)

    def test_clip_gradients(self):
        w = Tensor(np.array([1000.0]), requires_grad=True)
        opt = SGD([w], lr=0.1)
        (w * w).sum().backward()
        norm = opt.clip_gradients(1.0)
        assert norm == pytest.approx(2000.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)

    def test_lr_must_be_positive(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
