"""Tests for the CNN and ViT timing harnesses (arch -> priced op graph)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    CnnBaseline,
    CnnTimingHarness,
    VitBaseline,
    VitTimingHarness,
    build_cnn_graph,
    build_vit_graph,
)
from repro.models import cnn_timing, vit_timing
from repro.searchspace import (
    CnnSpaceConfig,
    VitSpaceConfig,
    cnn_search_space,
    hybrid_vit_search_space,
    vit_search_space,
)


def cnn_setup(num_blocks=4):
    space = cnn_search_space(CnnSpaceConfig(num_blocks=num_blocks))
    return space, CnnBaseline(), CnnTimingHarness(CnnBaseline())


class TestCnnLowering:
    def test_default_graph_builds(self):
        space, baseline, _ = cnn_setup()
        graph = build_cnn_graph(baseline, space.default_architecture())
        assert graph.total_flops > 0
        assert "classifier" in graph

    def test_any_sampled_arch_builds(self):
        space, baseline, _ = cnn_setup()
        rng = np.random.default_rng(0)
        for _ in range(15):
            graph = build_cnn_graph(baseline, space.sample(rng), batch=2)
            assert graph.total_flops > 0

    def test_width_delta_changes_flops(self):
        space, baseline, _ = cnn_setup()
        base = space.default_architecture()
        wider = base.replaced(**{"block0/width_delta": 4})
        assert (
            build_cnn_graph(baseline, wider).total_flops
            > build_cnn_graph(baseline, base).total_flops
        )

    def test_resolution_scales_flops(self):
        space, baseline, _ = cnn_setup()
        small = space.default_architecture().replaced(resolution=224)
        large = small.replaced(resolution=456)
        ratio = (
            build_cnn_graph(baseline, large).total_flops
            / build_cnn_graph(baseline, small).total_flops
        )
        assert 2.5 < ratio < 6.0  # ~ (456/224)^2

    def test_space_to_depth_quadruples_channels(self):
        space, baseline, _ = cnn_setup()
        arch = space.default_architecture().replaced(
            **{"block0/reshaping": "space_to_depth"}
        )
        graph = build_cnn_graph(baseline, arch)
        assert any(op.op_type == "reshape_space_to_depth" for op in graph.nodes())
        first = next(op for op in graph.nodes() if op.name.startswith("b0l0"))
        # The first block layer now sees 4x the stem channels.
        assert first.dims[1] >= 4 * baseline.stem_width

    def test_space_to_batch_keeps_channels(self):
        space, baseline, _ = cnn_setup()
        arch = space.default_architecture().replaced(
            **{"block0/reshaping": "space_to_batch"}
        )
        graph = build_cnn_graph(baseline, arch, batch=2)
        assert any(op.op_type == "reshape_space_to_batch" for op in graph.nodes())

    def test_fused_blocks_have_more_flops(self):
        space, baseline, _ = cnn_setup()
        base = space.default_architecture()
        fused = base.replaced(
            **{f"block{b}/type": "fused_mbconv" for b in range(baseline.num_blocks)}
        )
        assert (
            build_cnn_graph(baseline, fused).total_flops
            > build_cnn_graph(baseline, base).total_flops
        )

    def test_num_params_positive_and_monotone(self):
        space, baseline, _ = cnn_setup()
        base = space.default_architecture()
        deeper = base.replaced(**{"block1/depth_delta": 3})
        assert 0 < cnn_timing.num_params(baseline, base) < cnn_timing.num_params(
            baseline, deeper
        )

    def test_baseline_validation(self):
        with pytest.raises(ValueError):
            CnnBaseline(stage_widths=(24,), stage_depths=(1, 2))
        with pytest.raises(ValueError):
            CnnBaseline(stage_widths=(4, 24), stage_depths=(1, 1))


class TestCnnTimingHarness:
    def test_metrics(self):
        space, _, harness = cnn_setup()
        metrics = harness.metrics_from_simulator(space.default_architecture())
        assert set(metrics) == {"train_step_time", "serving_latency", "model_size"}
        assert all(v > 0 for v in metrics.values())

    def test_testbed_slower_than_simulator(self):
        space, _, harness = cnn_setup()
        arch = space.default_architecture()
        sim = harness.simulate(arch)
        hw = harness.measure(arch)
        assert hw[0] > sim[0] and hw[1] > sim[1]

    @given(st.integers(0, 3000))
    @settings(max_examples=10, deadline=None)
    def test_any_arch_times_positive(self, seed):
        space, _, harness = cnn_setup()
        arch = space.sample(np.random.default_rng(seed))
        train, serve = harness.simulate(arch)
        assert train > 0 and serve > 0


def vit_setup():
    space = vit_search_space(VitSpaceConfig(num_tfm_blocks=2))
    return space, VitBaseline(), VitTimingHarness(VitBaseline())


class TestVitLowering:
    def test_default_graph_builds(self):
        space, baseline, _ = vit_setup()
        graph = build_vit_graph(baseline, space.default_architecture())
        assert graph.total_flops > 0

    def test_any_sampled_arch_builds(self):
        space, baseline, _ = vit_setup()
        rng = np.random.default_rng(1)
        for _ in range(15):
            graph = build_vit_graph(baseline, space.sample(rng), batch=2)
            assert graph.total_flops > 0

    def test_hidden_size_scales_flops(self):
        space, baseline, _ = vit_setup()
        small = space.default_architecture().replaced(
            **{"tfm0/hidden_size": 64, "tfm1/hidden_size": 64}
        )
        large = space.default_architecture().replaced(
            **{"tfm0/hidden_size": 512, "tfm1/hidden_size": 512}
        )
        assert (
            build_vit_graph(baseline, large).total_flops
            > build_vit_graph(baseline, small).total_flops * 10
        )

    def test_low_rank_reduces_qkv_flops(self):
        space, baseline, _ = vit_setup()
        full = space.default_architecture().replaced(
            **{"tfm0/hidden_size": 512, "tfm1/hidden_size": 512}
        )
        factored = full.replaced(**{"tfm0/low_rank": 0.2, "tfm1/low_rank": 0.2})
        assert (
            build_vit_graph(baseline, factored).total_flops
            < build_vit_graph(baseline, full).total_flops
        )

    def test_seq_pooling_reduces_flops(self):
        space, baseline, _ = vit_setup()
        base = space.default_architecture().replaced(
            **{"tfm0/hidden_size": 256, "tfm1/hidden_size": 256}
        )
        pooled = base.replaced(**{"tfm0/seq_pooling": True})
        assert (
            build_vit_graph(baseline, pooled).total_flops
            < build_vit_graph(baseline, base).total_flops
        )

    def test_primer_adds_depthwise_op(self):
        space, baseline, _ = vit_setup()
        arch = space.default_architecture().replaced(**{"tfm0/primer": True})
        graph = build_vit_graph(baseline, arch)
        assert any("primer_dw" in op.name for op in graph.nodes())

    def test_hybrid_space_stem_decisions_honoured(self):
        space = hybrid_vit_search_space()
        baseline = VitBaseline()
        arch = space.default_architecture().replaced(patch_size=32, resolution=224)
        coarse = build_vit_graph(baseline, arch)
        fine = build_vit_graph(
            baseline, arch.replaced(patch_size=8)
        )
        assert fine.total_flops > coarse.total_flops  # 16x the tokens

    def test_num_params_tracks_rank(self):
        space, baseline, _ = vit_setup()
        full = space.default_architecture().replaced(
            **{"tfm0/hidden_size": 512, "tfm1/hidden_size": 512}
        )
        factored = full.replaced(**{"tfm0/low_rank": 0.1, "tfm1/low_rank": 0.1})
        assert vit_timing.num_params(baseline, factored) < vit_timing.num_params(
            baseline, full
        )

    def test_baseline_validation(self):
        with pytest.raises(ValueError):
            VitBaseline(base_depth=0)
        with pytest.raises(ValueError):
            VitBaseline(resolution=8, patch_size=16)


class TestVitTimingHarness:
    def test_metrics(self):
        space, _, harness = vit_setup()
        metrics = harness.metrics_from_simulator(space.default_architecture())
        assert all(v > 0 for v in metrics.values())

    def test_testbed_slower_than_simulator(self):
        space, _, harness = vit_setup()
        arch = space.default_architecture()
        assert harness.measure(arch)[0] > harness.simulate(arch)[0]

    @given(st.integers(0, 3000))
    @settings(max_examples=10, deadline=None)
    def test_any_arch_times_positive(self, seed):
        space, _, harness = vit_setup()
        arch = space.sample(np.random.default_rng(seed))
        train, serve = harness.simulate(arch)
        assert train > 0 and serve > 0
