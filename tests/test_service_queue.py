"""Durable job-queue tests: atomic records, state machine, recovery."""

import json

import pytest

from repro.service.protocol import JobStateError, UnknownJobError
from repro.service.queue import JOB_STATES, TERMINAL_STATES, JobQueue


def make_queue(tmp_path, **kwargs):
    return JobQueue(tmp_path / "spool", **kwargs)


class TestSubmitAndRecords:
    def test_submit_assigns_fifo_ids_and_persists(self, tmp_path):
        queue = make_queue(tmp_path)
        a = queue.submit("alice", {"steps": 3})
        b = queue.submit("bob", {"steps": 5})
        assert (a.job_id, b.job_id) == ("job-000000", "job-000001")
        assert a.state == "queued" and a.tenant == "alice"
        on_disk = json.loads(
            (tmp_path / "spool" / "jobs" / "job-000000.json").read_text()
        )
        assert on_disk["state"] == "queued"
        assert on_disk["spec"] == {"steps": 3}

    def test_get_returns_copies(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("alice", {})
        queue.get("job-000000").state = "mutated"
        assert queue.get("job-000000").state == "queued"

    def test_unknown_job_raises_typed(self, tmp_path):
        with pytest.raises(UnknownJobError, match="no-such"):
            make_queue(tmp_path).get("no-such")

    def test_list_filters_by_tenant_and_state(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("alice", {})
        queue.submit("bob", {})
        queue.transition("job-000001", "running")
        assert [r.job_id for r in queue.list(tenant="alice")] == ["job-000000"]
        assert [r.job_id for r in queue.list(states=["running"])] == ["job-000001"]
        counts = queue.counts()
        assert counts["queued"] == 1 and counts["running"] == 1


class TestStateMachine:
    def test_full_lifecycle_edges(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("alice", {})
        queue.transition("job-000000", "running")
        record = queue.transition("job-000000", "done")
        assert record.state == "done"
        assert record.started_at is not None
        assert record.finished_at is not None
        assert record.attempts == 1
        assert [s for s, _ in record.history] == ["queued", "running", "done"]

    @pytest.mark.parametrize("terminal", TERMINAL_STATES)
    def test_terminal_states_are_final(self, tmp_path, terminal):
        queue = make_queue(tmp_path)
        queue.submit("alice", {})
        if terminal != "cancelled":
            queue.transition("job-000000", "running")
        queue.transition("job-000000", terminal)
        with pytest.raises(JobStateError):
            queue.transition("job-000000", "running")

    def test_illegal_edge_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("alice", {})
        with pytest.raises(JobStateError, match="is queued; cannot move to done"):
            queue.transition("job-000000", "done")

    def test_running_back_to_queued_is_legal(self, tmp_path):
        # The drain/crash-recovery edge: a parked job resumes later.
        queue = make_queue(tmp_path)
        queue.submit("alice", {})
        queue.transition("job-000000", "running")
        record = queue.transition("job-000000", "queued")
        assert record.state == "queued"

    def test_states_registry_is_closed(self):
        assert set(TERMINAL_STATES) <= set(JOB_STATES)


class TestDurability:
    def test_spool_survives_reconstruction(self, tmp_path):
        first = make_queue(tmp_path)
        first.submit("alice", {"steps": 4})
        first.submit("bob", {"steps": 2})
        first.transition("job-000000", "running")
        # A brand-new queue object (daemon restart) sees the same state.
        second = make_queue(tmp_path)
        assert second.get("job-000000").state == "running"
        assert second.get("job-000001").spec == {"steps": 2}
        # And continues the id sequence instead of reusing ids.
        third = second.submit("carol", {})
        assert third.job_id == "job-000002"

    def test_corrupt_record_is_skipped_not_fatal(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("alice", {})
        (tmp_path / "spool" / "jobs" / "job-000099.json").write_text("{trunc")
        reopened = make_queue(tmp_path)
        assert [r.job_id for r in reopened.list()] == ["job-000000"]

    def test_recover_running_requeues_and_counts(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("alice", {})
        queue.submit("alice", {})
        queue.transition("job-000000", "running")
        # Simulate the daemon dying and a new one scanning the spool.
        fresh = make_queue(tmp_path)
        recovered = fresh.recover_running()
        assert [r.job_id for r in recovered] == ["job-000000"]
        record = fresh.get("job-000000")
        assert record.state == "queued" and record.recoveries == 1
        assert fresh.get("job-000001").recoveries == 0


class TestClaiming:
    def test_claim_next_is_fifo(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("alice", {})
        queue.submit("bob", {})
        claimed = queue.claim_next()
        assert claimed.job_id == "job-000000" and claimed.state == "running"
        assert queue.claim_next().job_id == "job-000001"
        assert queue.claim_next() is None

    def test_claim_respects_eligibility(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("alice", {})
        queue.submit("bob", {})
        claimed = queue.claim_next(eligible=lambda r: r.tenant == "bob")
        assert claimed.job_id == "job-000001"

    def test_claim_is_durable(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("alice", {})
        queue.claim_next()
        assert make_queue(tmp_path).get("job-000000").state == "running"
