"""Tests for the operator-graph IR and op constructors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import OpGraph, OpNode, UNIT_MEMORY, UNIT_MXU, UNIT_VPU, ops


class TestOpNode:
    def test_total_bytes_and_intensity(self):
        op = OpNode("x", "dense", flops=100.0, bytes_in=10, bytes_out=10, param_bytes=5)
        assert op.total_bytes == 25
        assert op.operational_intensity == pytest.approx(4.0)

    def test_zero_bytes_intensity(self):
        op = OpNode("x", "noop")
        assert op.operational_intensity == 0.0

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            OpNode("x", "dense", unit="quantum")

    def test_negative_flops(self):
        with pytest.raises(ValueError):
            OpNode("x", "dense", flops=-1.0)


class TestOpGraph:
    def test_chain_and_topology(self):
        g = OpGraph("m")
        last = g.chain([OpNode(f"op{i}", "dense", flops=1.0) for i in range(3)])
        assert last == "op2"
        assert [op.name for op in g.nodes()] == ["op0", "op1", "op2"]

    def test_duplicate_name_rejected(self):
        g = OpGraph()
        g.add(OpNode("a", "dense"))
        with pytest.raises(ValueError):
            g.add(OpNode("a", "dense"))

    def test_missing_dependency_rejected(self):
        g = OpGraph()
        with pytest.raises(KeyError):
            g.add(OpNode("b", "dense"), deps=["nope"])

    def test_aggregates(self):
        g = OpGraph()
        g.add(OpNode("a", "dense", flops=5.0, param_bytes=2.0, bytes_in=1.0))
        g.add(OpNode("b", "dense", flops=7.0, param_bytes=3.0), deps=["a"])
        assert g.total_flops == 12.0
        assert g.total_param_bytes == 5.0
        assert g.total_bytes == 6.0

    def test_critical_path_takes_slower_branch(self):
        """Parallel branches: the critical path is MAX of the arms."""
        g = OpGraph()
        g.add(OpNode("src", "concat"))
        g.add(OpNode("fast", "dense"), deps=["src"])
        g.add(OpNode("slow", "dense"), deps=["src"])
        g.add(OpNode("join", "concat"), deps=["fast", "slow"])
        weights = {"src": 1.0, "fast": 2.0, "slow": 10.0, "join": 1.0}
        path = g.critical_path(weights)
        assert path == ["src", "slow", "join"]

    def test_critical_path_empty_graph(self):
        assert OpGraph().critical_path({}) == []

    def test_contains_and_len(self):
        g = OpGraph()
        g.add(OpNode("a", "dense"))
        assert "a" in g and "b" not in g
        assert len(g) == 1

    def test_successors_predecessors(self):
        g = OpGraph()
        g.chain([OpNode("a", "x"), OpNode("b", "x")])
        assert g.successors("a") == ["b"]
        assert g.predecessors("b") == ["a"]


class TestOpConstructors:
    def test_conv2d_flops(self):
        op = ops.conv2d("c", height=32, width=32, cin=16, cout=32, kernel=3, stride=1)
        assert op.flops == 2 * 32 * 32 * 16 * 32 * 9
        assert op.unit == UNIT_MXU
        assert op.param_bytes == 9 * 16 * 32 * 2

    def test_conv2d_stride_shrinks_output(self):
        s1 = ops.conv2d("a", 32, 32, 16, 16, 3, stride=1)
        s2 = ops.conv2d("b", 32, 32, 16, 16, 3, stride=2)
        assert s2.flops == pytest.approx(s1.flops / 4)
        assert s2.bytes_out == pytest.approx(s1.bytes_out / 4)

    def test_depthwise_runs_on_vpu(self):
        op = ops.depthwise_conv2d("d", 32, 32, 64, 3)
        assert op.unit == UNIT_VPU
        assert op.flops == 2 * 32 * 32 * 64 * 9

    def test_depthwise_far_fewer_flops_than_dense_conv(self):
        dw = ops.depthwise_conv2d("d", 32, 32, 64, 3)
        full = ops.conv2d("c", 32, 32, 64, 64, 3)
        assert full.flops == dw.flops * 64

    def test_dense_op(self):
        op = ops.dense("fc", batch=8, nin=128, nout=256)
        assert op.flops == 2 * 8 * 128 * 256
        assert op.dims == (8, 128, 256)

    def test_matmul_no_params(self):
        op = ops.matmul("qk", m=64, k=32, n=64, batch=4)
        assert op.param_bytes == 0
        assert op.flops == 2 * 4 * 64 * 32 * 64

    def test_embedding_lookup_memory_and_network_bound(self):
        op = ops.embedding_lookup("emb", lookups=1024, width=64)
        assert op.unit == UNIT_MEMORY
        assert op.flops == 0
        assert op.network_bytes == 1024 * 64 * 4

    def test_embedding_lookup_local(self):
        op = ops.embedding_lookup("emb", lookups=10, width=8, distributed=False)
        assert op.network_bytes == 0

    def test_elementwise_and_softmax(self):
        act = ops.elementwise("relu", elements=1000)
        assert act.flops == 1000
        sm = ops.softmax("sm", rows=10, row_length=100)
        assert sm.flops == 5000

    def test_pooling_and_concat(self):
        pool = ops.pooling("p", 32, 32, 8, window=2)
        assert pool.bytes_out == 16 * 16 * 8 * 2
        cat = ops.concat("c", total_elements=100)
        assert cat.flops == 0 and cat.unit == UNIT_MEMORY

    def test_all_to_all(self):
        op = ops.all_to_all("a2a", payload_bytes=1e6)
        assert op.network_bytes == 1e6

    @given(st.integers(1, 64), st.integers(1, 64), st.integers(1, 7))
    @settings(max_examples=30, deadline=None)
    def test_conv_flops_nonnegative_and_monotone_in_cout(self, cin, cout, k):
        a = ops.conv2d("a", 16, 16, cin, cout, k)
        b = ops.conv2d("b", 16, 16, cin, cout + 1, k)
        assert 0 <= a.flops < b.flops
