"""Batched-vs-sequential equivalence for the shard execution layer.

Every batched path must be indistinguishable from the sequential path
it replaces: ``price_many`` vs. looped ``price`` (metrics *and* cache
state), grouped supernet passes vs. per-core passes (values, gradients,
and whole-search trajectories), and the parallel simulator sweep vs.
the serial one (same dataset, same order, same rng stream).
"""

import numpy as np
import pytest

from repro.core import (
    BatchPerformanceFn,
    EvalRuntime,
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    group_unique_architectures,
    relu_reward,
)
from repro.data import CtrTaskConfig, CtrTeacher, NullSource, SingleStepPipeline
from repro.perfmodel import ArchitectureEncoder, PerformanceModel, TwoPhaseConfig, TwoPhaseTrainer
from repro.searchspace import Decision, SearchSpace, DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig


def small_space():
    return SearchSpace(
        "small",
        [Decision("a", (0, 1, 2)), Decision("b", ("x", "y")), Decision("c", (4, 8))],
    )


class CountingPerformanceFn:
    """Pure per-architecture performance function counting invocations."""

    def __init__(self):
        self.calls = 0

    def __call__(self, arch):
        self.calls += 1
        return {"step_time": 1.0 + 0.1 * arch["a"], "model_size": float(arch["c"])}


class CountingBatchFn(CountingPerformanceFn):
    """Adds the ``price_batch`` vectorized entry point."""

    def __init__(self):
        super().__init__()
        self.batch_calls = 0

    def price_batch(self, archs):
        self.batch_calls += 1
        return [CountingPerformanceFn.__call__(self, a) for a in archs]


def shard_with_duplicates(space, count=20, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (arch, space.indices_of(arch))
        for arch in (space.sample(rng) for _ in range(count))
    ]


class TestPriceMany:
    def test_matches_looped_price(self):
        """Same metrics, same counters, same cache contents as a loop."""
        space = small_space()
        drawn = shard_with_duplicates(space, count=30)
        batched_rt = EvalRuntime(CountingPerformanceFn(), space=space)
        looped_rt = EvalRuntime(CountingPerformanceFn(), space=space)
        batched = batched_rt.price_many(drawn)
        looped = [looped_rt.price(arch, idx) for arch, idx in drawn]
        assert batched == looped
        bs, ls = batched_rt.stats(), looped_rt.stats()
        assert (bs.cache_hits, bs.cache_misses) == (ls.cache_hits, ls.cache_misses)
        assert bs.evaluations == ls.evaluations
        assert bs.candidates_priced == ls.candidates_priced == 30
        for arch, idx in drawn:
            key = tuple(int(i) for i in idx)
            assert key in batched_rt.cache and key in looped_rt.cache

    def test_in_shard_duplicates_count_as_hits(self):
        """A duplicate of a cold miss is the hit the loop would record."""
        space = small_space()
        arch = space.default_architecture()
        idx = space.indices_of(arch)
        fn = CountingPerformanceFn()
        runtime = EvalRuntime(fn, space=space)
        results = runtime.price_many([(arch, idx), (arch, idx), (arch, idx)])
        assert results[0] == results[1] == results[2]
        assert fn.calls == 1
        stats = runtime.stats()
        assert (stats.cache_hits, stats.cache_misses) == (2, 1)

    def test_cache_disabled_evaluates_everything(self):
        space = small_space()
        drawn = shard_with_duplicates(space, count=15)
        fn = CountingPerformanceFn()
        runtime = EvalRuntime(fn, space=space, use_cache=False)
        results = runtime.price_many(drawn)
        assert fn.calls == 15 and runtime.evaluations == 15
        reference = [CountingPerformanceFn()(arch) for arch, _ in drawn]
        assert results == reference

    def test_batch_fn_used_once_for_all_misses(self):
        space = small_space()
        drawn = shard_with_duplicates(space, count=25)
        batch_fn, plain_fn = CountingBatchFn(), CountingPerformanceFn()
        via_batch = EvalRuntime(batch_fn, space=space).price_many(drawn)
        via_fallback = EvalRuntime(plain_fn, space=space).price_many(drawn)
        assert via_batch == via_fallback
        assert batch_fn.batch_calls == 1  # one vectorized call, all misses
        assert batch_fn.calls == plain_fn.calls  # same architectures evaluated

    def test_batch_fn_wrong_length_rejected(self):
        space = small_space()

        class Broken(CountingBatchFn):
            def price_batch(self, archs):
                return []

        runtime = EvalRuntime(Broken(), space=space)
        with pytest.raises(ValueError, match="price_batch returned"):
            runtime.price_many(shard_with_duplicates(space, count=3))

    def test_needs_indices_or_space(self):
        space = small_space()
        runtime = EvalRuntime(CountingPerformanceFn())  # no space
        with pytest.raises(ValueError, match="indices or a search space"):
            runtime.price_many([(space.default_architecture(), None)])

    def test_results_are_copies(self):
        space = small_space()
        runtime = EvalRuntime(CountingPerformanceFn(), space=space)
        arch = space.default_architecture()
        runtime.price_many([(arch, None)])[0]["step_time"] = -1.0
        assert runtime.price_many([(arch, None)])[0]["step_time"] > 0

    def test_throughput_and_per_call_means_surface_in_summary(self):
        space = small_space()
        runtime = EvalRuntime(CountingPerformanceFn(), space=space)
        with runtime.timed("price"):
            runtime.price_many(shard_with_duplicates(space, count=8))
        stats = runtime.stats()
        assert stats.candidates_priced == 8
        assert stats.price_throughput > 0
        assert stats.stage_mean_seconds("price") == pytest.approx(
            stats.stage_seconds["price"]
        )
        assert "candidates/s priced" in stats.summary()
        assert "ms/call" in stats.summary()


class TestPerformanceModelBatch:
    def test_predict_many_matches_predict(self):
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=2))
        model = PerformanceModel(
            ArchitectureEncoder(space),
            hidden_sizes=(16, 16),
            size_fn=lambda arch: 123.0,
            seed=0,
        )
        rng = np.random.default_rng(0)
        archs = [space.sample(rng) for _ in range(12)]
        many = model.predict_many(archs)
        for arch, metrics in zip(archs, many):
            single = model.predict(arch)
            assert metrics.keys() == single.keys()
            for key in single:
                assert metrics[key] == pytest.approx(single[key], rel=1e-12)

    def test_model_is_a_batch_performance_fn(self):
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=2))
        model = PerformanceModel(ArchitectureEncoder(space), hidden_sizes=(8,))
        assert isinstance(model, BatchPerformanceFn)
        runtime = EvalRuntime(model, space=space)
        assert runtime.batch_fn is not None


class TestGroupUniqueArchitectures:
    def test_groups_positions_in_first_seen_order(self):
        space = small_space()
        a = space.default_architecture()
        b = space.sample(np.random.default_rng(4))
        drawn = [
            (a, space.indices_of(a)),
            (b, space.indices_of(b)),
            (a, space.indices_of(a)),
            (a, space.indices_of(a)),
        ]
        if a == b:  # pathological draw; regenerate deterministically
            pytest.skip("sampled the default architecture")
        assert group_unique_architectures(drawn) == [[0, 2, 3], [1]]

    def test_all_positions_covered_exactly_once(self):
        space = small_space()
        drawn = shard_with_duplicates(space, count=17, seed=3)
        groups = group_unique_architectures(drawn)
        flat = sorted(position for group in groups for position in group)
        assert flat == list(range(17))


def ctr_batches(num_tables=2, count=3, batch_size=16, seed=0):
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=num_tables, batch_size=batch_size, seed=seed)
    )
    return [teacher.next_batch() for _ in range(count)]


class TestStackedScoring:
    def test_quality_many_matches_per_batch_quality(self):
        supernet = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=2, seed=0))
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=2))
        arch = space.default_architecture()
        batches = ctr_batches(count=4)
        stacked = supernet.quality_many(
            arch, [b.inputs for b in batches], [b.labels for b in batches]
        )
        sequential = [
            supernet.quality(arch, b.inputs, b.labels) for b in batches
        ]
        np.testing.assert_allclose(stacked, sequential, rtol=1e-12)

    def test_loss_many_matches_mean_of_batch_losses(self):
        supernet = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=2, seed=0))
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=2))
        arch = space.default_architecture()
        batches = ctr_batches(count=3)
        stacked = supernet.loss_many(
            arch, [b.inputs for b in batches], [b.labels for b in batches]
        )
        per_batch = [
            supernet.loss(arch, b.inputs, b.labels).item() for b in batches
        ]
        assert stacked.item() == pytest.approx(np.mean(per_batch), rel=1e-9)

    def test_loss_many_gradients_match_sequential_accumulation(self):
        """One scaled stacked backward == the per-core gradient sum."""
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=2))
        arch = space.default_architecture()
        batches = ctr_batches(count=4)
        num_cores = len(batches)

        grouped_net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=2, seed=0))
        grouped_net.zero_grad()
        loss = grouped_net.loss_many(
            arch, [b.inputs for b in batches], [b.labels for b in batches]
        )
        (loss * (num_cores / num_cores)).backward()

        sequential_net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=2, seed=0))
        sequential_net.zero_grad()
        for b in batches:
            seq_loss = sequential_net.loss(arch, b.inputs, b.labels)
            (seq_loss * (1.0 / num_cores)).backward()

        touched = 0
        for p_grouped, p_sequential in zip(
            grouped_net.parameters(), sequential_net.parameters()
        ):
            # Parameters of unused candidates (e.g. non-selected vocab
            # tables) receive no gradient on either path.
            assert (p_grouped.grad is None) == (p_sequential.grad is None)
            if p_grouped.grad is not None:
                touched += 1
                np.testing.assert_allclose(
                    p_grouped.grad, p_sequential.grad, rtol=1e-9, atol=1e-12
                )
        assert touched > 0

    def test_unequal_batch_sizes_fall_back_to_per_batch_losses(self):
        supernet = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=2, seed=0))
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=2))
        arch = space.default_architecture()
        big = ctr_batches(count=1, batch_size=24)[0]
        small = ctr_batches(count=1, batch_size=8, seed=1)[0]
        mixed = supernet.loss_many(
            arch, [big.inputs, small.inputs], [big.labels, small.labels]
        )
        expected = np.mean(
            [
                supernet.loss(arch, big.inputs, big.labels).item(),
                supernet.loss(arch, small.inputs, small.labels).item(),
            ]
        )
        assert mixed.item() == pytest.approx(expected, rel=1e-9)


def dlrm_search(group_unique, steps=6, seed=0):
    num_tables = 2
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=num_tables, num_dense_stacks=2)
    )
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=num_tables, batch_size=16, seed=seed)
    )

    def performance_fn(arch):
        return {"step_time": 1.0 + 0.05 * arch["emb0/width_delta"]}

    return SingleStepSearch(
        space=space,
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=num_tables, seed=seed)),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=performance_fn,
        config=SearchConfig(
            steps=steps,
            num_cores=4,
            warmup_steps=2,
            seed=seed,
            group_unique=group_unique,
        ),
    ).run()


class TestGroupedSearchEquivalence:
    def test_grouped_and_ungrouped_searches_agree(self):
        """Grouping is a pure execution strategy: same StepRecords."""
        grouped = dlrm_search(group_unique=True)
        ungrouped = dlrm_search(group_unique=False)
        assert grouped.final_architecture == ungrouped.final_architecture
        np.testing.assert_allclose(
            [r.mean_quality for r in grouped.history],
            [r.mean_quality for r in ungrouped.history],
            atol=1e-9,
        )
        np.testing.assert_allclose(
            [r.mean_reward for r in grouped.history],
            [r.mean_reward for r in ungrouped.history],
            atol=1e-9,
        )
        np.testing.assert_allclose(
            [r.policy_entropy for r in grouped.history],
            [r.policy_entropy for r in ungrouped.history],
            atol=1e-9,
        )

    def test_fallback_supernet_keeps_exact_rng_stream(self):
        """Without quality_many the per-core order (and its noise rng
        stream) must be untouched: both settings are bit-identical."""

        def run(group_unique):
            space = small_space()
            return SingleStepSearch(
                space=space,
                supernet=SurrogateSuperNetwork(
                    lambda arch: 0.4 + 0.1 * arch["a"], noise_sigma=0.05, seed=0
                ),
                pipeline=SingleStepPipeline(NullSource().next_batch),
                reward_fn=relu_reward(
                    [PerformanceObjective("step_time", 1.0, -0.5)]
                ),
                performance_fn=CountingPerformanceFn(),
                config=SearchConfig(
                    steps=10,
                    num_cores=4,
                    warmup_steps=2,
                    seed=0,
                    group_unique=group_unique,
                ),
            ).run()

        on, off = run(True), run(False)
        assert on.final_architecture == off.final_architecture
        assert [r.mean_quality for r in on.history] == [
            r.mean_quality for r in off.history
        ]
        assert [r.mean_reward for r in on.history] == [
            r.mean_reward for r in off.history
        ]


def numeric_space():
    return SearchSpace(
        "numeric",
        [Decision("a", (1, 2, 3)), Decision("b", (10, 20)), Decision("c", (4, 8))],
    )


def pure_timing_fn(arch):
    return (1.0 + 0.1 * arch["a"], 2.0 + 0.05 * arch["c"])


def make_trainer(num_workers=1, seed=0):
    space = numeric_space()
    model = PerformanceModel(ArchitectureEncoder(space), hidden_sizes=(8,), seed=seed)
    return TwoPhaseTrainer(
        model,
        space,
        simulate_fn=pure_timing_fn,
        measure_fn=pure_timing_fn,
        config=TwoPhaseConfig(
            pretrain_epochs=2, finetune_epochs=2, num_workers=num_workers
        ),
        seed=seed,
    )


class TestParallelSweep:
    def test_parallel_sweep_equals_serial_sweep(self):
        """--jobs N reproduces the serial dataset exactly, in order."""
        serial_archs, serial_times = make_trainer().sample_dataset(
            37, pure_timing_fn, num_workers=1
        )
        parallel_archs, parallel_times = make_trainer().sample_dataset(
            37, pure_timing_fn, num_workers=4
        )
        assert serial_archs == parallel_archs
        np.testing.assert_array_equal(serial_times, parallel_times)
        for arch, row in zip(parallel_archs, parallel_times):
            np.testing.assert_array_equal(row, pure_timing_fn(arch))

    def test_worker_count_does_not_touch_rng_stream(self):
        """Sampling stays serial, so later draws are worker-independent."""
        serial = make_trainer()
        parallel = make_trainer()
        serial.sample_dataset(10, pure_timing_fn, num_workers=1)
        parallel.sample_dataset(10, pure_timing_fn, num_workers=3)
        after_serial, _ = serial.sample_dataset(5, pure_timing_fn)
        after_parallel, _ = parallel.sample_dataset(5, pure_timing_fn)
        assert after_serial == after_parallel

    def test_pretrain_reports_identical_across_worker_counts(self):
        serial_report = make_trainer(num_workers=1).pretrain(24)
        parallel_report = make_trainer(num_workers=4).pretrain(24)
        assert serial_report == parallel_report

    def test_num_workers_validated(self):
        with pytest.raises(ValueError, match="num_workers"):
            TwoPhaseConfig(num_workers=0)


class TestCliPerfmodel:
    def test_perfmodel_command_runs(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "perfmodel",
                    "--samples",
                    "40",
                    "--tables",
                    "2",
                    "--epochs",
                    "2",
                    "--jobs",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "NRMSE" in out
