"""Tests for proxy-fidelity metrics (Spearman, calibrated error)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import proxy_relative_error, spearman_correlation


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        assert spearman_correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_rank_only(self):
        """Nonlinear but monotone transforms keep correlation at 1."""
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_correlation(x, np.exp(x)) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            spearman_correlation([1.0], [2.0])
        with pytest.raises(ValueError):
            spearman_correlation([1.0, 2.0], [1.0, 2.0, 3.0])


class TestProxyRelativeError:
    def test_perfectly_scaled_proxy_has_zero_error(self):
        truth = np.array([1.0, 2.0, 4.0])
        report = proxy_relative_error(truth * 1000.0, truth)
        assert report.mean_relative_error == pytest.approx(0.0, abs=1e-12)
        assert report.spearman == pytest.approx(1.0)

    def test_calibration_is_optimal_in_log_space(self):
        """Any other single scale gives equal or worse log-RMS error."""
        rng = np.random.default_rng(0)
        truth = rng.uniform(1.0, 10.0, size=50)
        proxy = truth * np.exp(rng.normal(0, 0.3, size=50))
        report = proxy_relative_error(proxy, truth)
        best_scale = np.exp(np.mean(np.log(truth) - np.log(proxy)))
        for factor in (0.5, 0.9, 1.1, 2.0):
            other = proxy * best_scale * factor
            log_rms_best = np.sqrt(np.mean(np.log(proxy * best_scale / truth) ** 2))
            log_rms_other = np.sqrt(np.mean(np.log(other / truth) ** 2))
            assert log_rms_best <= log_rms_other + 1e-12

    def test_decoupled_proxy_has_large_error(self):
        rng = np.random.default_rng(1)
        truth = rng.uniform(1.0, 10.0, size=100)
        proxy = rng.uniform(1.0, 10.0, size=100)  # unrelated
        report = proxy_relative_error(proxy, truth)
        assert report.mean_relative_error > 0.3
        assert abs(report.spearman) < 0.5

    def test_max_at_least_mean(self):
        rng = np.random.default_rng(2)
        truth = rng.uniform(1.0, 5.0, size=30)
        proxy = truth * np.exp(rng.normal(0, 0.2, size=30))
        report = proxy_relative_error(proxy, truth)
        assert report.max_relative_error >= report.mean_relative_error

    def test_positivity_required(self):
        with pytest.raises(ValueError):
            proxy_relative_error([1.0, -1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            proxy_relative_error([1.0, 1.0], [0.0, 2.0])

    @given(st.lists(st.floats(0.1, 100.0), min_size=3, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_scale_invariance(self, values):
        truth = np.asarray(values)
        proxy = truth.copy()
        a = proxy_relative_error(proxy, truth)
        b = proxy_relative_error(proxy * 12345.0, truth)
        assert a.mean_relative_error == pytest.approx(b.mean_relative_error, abs=1e-9)
