"""Tests for DLRM embedding-table sharding."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import TPU_V4, TPU_V4I
from repro.models import TableSpec, baseline_production_dlrm
from repro.models.dlrm_sharding import (
    ShardPlan,
    embedding_step_time,
    plan_sharding,
    sharding_sweep,
)


def spec_with_tables(widths, vocab=100_000, num_chips_batch=4096):
    base = baseline_production_dlrm(num_tables=len(widths))
    tables = tuple(TableSpec(vocab=vocab, width=w) for w in widths)
    return dataclasses.replace(base, tables=tables)


class TestPlanSharding:
    def test_every_table_assigned_once(self):
        spec = baseline_production_dlrm(num_tables=10)
        plan = plan_sharding(spec, num_chips=4)
        assigned = [t for chip in plan.assignments for t in chip]
        assert sorted(assigned) == list(range(10))

    def test_single_chip(self):
        spec = baseline_production_dlrm(num_tables=4)
        plan = plan_sharding(spec, 1)
        assert len(plan.assignments) == 1
        assert sorted(plan.assignments[0]) == [0, 1, 2, 3]
        assert plan.load_imbalance == pytest.approx(1.0)

    def test_uniform_tables_balance_perfectly(self):
        spec = spec_with_tables([32] * 8)
        plan = plan_sharding(spec, 4)
        assert plan.load_imbalance == pytest.approx(1.0)
        assert all(len(chip) == 2 for chip in plan.assignments)

    def test_skewed_tables_lpt_heuristic(self):
        """One giant table: it gets a chip almost to itself."""
        spec = spec_with_tables([256, 8, 8, 8, 8, 8, 8, 8])
        plan = plan_sharding(spec, 2)
        big_chip = next(
            chip for chip in plan.assignments if 0 in chip
        )
        assert len(big_chip) == 1  # the 256-wide table rides alone

    def test_resident_bytes_tracked(self):
        spec = spec_with_tables([32, 32])
        plan = plan_sharding(spec, 2)
        expected = 100_000 * 32 * 4.0
        assert plan.resident_bytes == (expected, expected)

    def test_fits_memory(self):
        small = plan_sharding(spec_with_tables([8, 8]), 2)
        assert small.fits_memory(TPU_V4)
        huge = plan_sharding(
            spec_with_tables([512] * 4, vocab=50_000_000), 1
        )
        assert not huge.fits_memory(TPU_V4I)  # 8 GB chip

    def test_validation(self):
        spec = baseline_production_dlrm(num_tables=2)
        with pytest.raises(ValueError):
            plan_sharding(spec, 0)

    @given(st.integers(1, 16), st.integers(1, 24))
    @settings(max_examples=30, deadline=None)
    def test_imbalance_bounded_by_lpt(self, num_chips, num_tables):
        rng = np.random.default_rng(num_chips * 31 + num_tables)
        widths = [int(w) for w in rng.choice([8, 16, 32, 64, 128], size=num_tables)]
        plan = plan_sharding(spec_with_tables(widths), num_chips)
        if num_tables >= num_chips:
            # LPT guarantee: makespan within 4/3 + small slack of optimal,
            # and optimal >= mean, so imbalance <= ~4/3 + max-item effects.
            assert plan.load_imbalance <= max(
                4.0 / 3.0 + 0.35,
                max(plan.lookup_bytes) / (sum(plan.lookup_bytes) / num_chips),
            )


class TestEmbeddingStepTime:
    def test_single_chip_no_network(self):
        spec = baseline_production_dlrm(num_tables=4)
        time = embedding_step_time(spec, plan_sharding(spec, 1))
        assert time.all_to_all_time_s == 0.0
        assert time.gather_time_s > 0

    def test_more_chips_reduce_gather_time(self):
        spec = baseline_production_dlrm(num_tables=32)
        t1 = embedding_step_time(spec, plan_sharding(spec, 1))
        t8 = embedding_step_time(spec, plan_sharding(spec, 8))
        assert t8.gather_time_s < t1.gather_time_s

    def test_all_to_all_fraction_grows_with_chips(self):
        """More chips, more of each gather crosses the network."""
        spec = spec_with_tables([32] * 32)
        t2 = embedding_step_time(spec, plan_sharding(spec, 2))
        t16 = embedding_step_time(spec, plan_sharding(spec, 16))
        frac2 = t2.all_to_all_time_s / (t2.gather_time_s + 1e-30)
        frac16 = t16.all_to_all_time_s / (t16.gather_time_s + 1e-30)
        assert frac16 > frac2

    def test_sweep_monotone_total_until_network_floor(self):
        spec = baseline_production_dlrm(num_tables=32)
        sweep = sharding_sweep(spec, (1, 2, 4, 8, 16))
        totals = [sweep[c].total_s for c in (1, 2, 4, 8, 16)]
        # Scaling out helps overall for this workload.
        assert totals[-1] < totals[0]

    def test_sweep_validation(self):
        spec = baseline_production_dlrm(num_tables=4)
        with pytest.raises(ValueError):
            sharding_sweep(spec, ())
