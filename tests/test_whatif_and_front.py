"""Tests for hardware what-if analysis and Pareto-front tracing."""

import numpy as np
import pytest

from repro.core import (
    FrontSearchConfig,
    PerformanceObjective,
    SearchConfig,
    trace_front,
)
from repro.graph import OpGraph, ops
from repro.hardware import (
    TPU_V4,
    bottleneck,
    resource_sensitivity,
    sensitivity_profile,
)
from repro.models import baseline_production_dlrm
from repro.models.dlrm import apply_architecture
from repro.models.timing import DlrmTimingHarness
from repro.quality import DlrmQualityModel
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space


def compute_bound_graph():
    graph = OpGraph("compute")
    graph.chain([ops.dense(f"fc{i}", 4096, 4096, 4096) for i in range(3)])
    return graph


def memory_bound_graph():
    graph = OpGraph("memory")
    graph.add(ops.embedding_lookup("emb", lookups=int(4e6), width=64, distributed=False))
    return graph


def network_bound_graph():
    graph = OpGraph("network")
    graph.add(ops.all_to_all("a2a", payload_bytes=2e9))
    return graph


class TestResourceSensitivity:
    def test_compute_bound_rides_matrix_unit(self):
        assert bottleneck(compute_bound_graph(), TPU_V4) == "matrix_unit"

    def test_memory_bound_rides_hbm(self):
        assert bottleneck(memory_bound_graph(), TPU_V4) == "hbm_bandwidth"

    def test_network_bound_rides_interconnect(self):
        assert bottleneck(network_bound_graph(), TPU_V4) == "interconnect"

    def test_elasticity_near_one_for_bottleneck(self):
        sens = resource_sensitivity(compute_bound_graph(), TPU_V4, "matrix_unit")
        assert 0.7 < sens.elasticity <= 1.01

    def test_elasticity_near_zero_for_slack_resource(self):
        sens = resource_sensitivity(compute_bound_graph(), TPU_V4, "interconnect")
        assert sens.elasticity < 0.05

    def test_profile_covers_all_resources(self):
        profile = sensitivity_profile(compute_bound_graph(), TPU_V4)
        assert set(profile) == {
            "matrix_unit",
            "vector_unit",
            "hbm_bandwidth",
            "cmem_bandwidth",
            "interconnect",
        }

    def test_speedup_never_negative(self):
        for graph in (compute_bound_graph(), memory_bound_graph()):
            for sens in sensitivity_profile(graph, TPU_V4).values():
                assert sens.speedup >= 1.0 - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            resource_sensitivity(compute_bound_graph(), TPU_V4, "quantum_unit")
        with pytest.raises(ValueError):
            resource_sensitivity(compute_bound_graph(), TPU_V4, "matrix_unit", scale=0)


class TestTraceFront:
    def make_problem(self):
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=2))
        baseline = baseline_production_dlrm(num_tables=2)
        harness = DlrmTimingHarness(baseline, seed=0)
        quality_model = DlrmQualityModel(baseline)
        cache = {}

        def perf_fn(arch):
            if arch not in cache:
                cache[arch] = {"train_step_time": harness.simulate(arch)[0]}
            return cache[arch]

        def quality_fn(arch):
            return quality_model.quality(apply_architecture(baseline, arch))

        return space, quality_fn, perf_fn

    def test_sweep_produces_one_point_per_target(self):
        space, quality_fn, perf_fn = self.make_problem()
        config = FrontSearchConfig(
            target_scales=(0.8, 1.2),
            search=SearchConfig(
                steps=40, num_cores=4, warmup_steps=5, policy_lr=0.15,
                policy_entropy_coef=0.1, record_candidates=False, seed=0,
            ),
        )
        result = trace_front(space, quality_fn, perf_fn, config)
        assert len(result.points) == 2
        assert {p.target_scale for p in result.points} == {0.8, 1.2}
        for point in result.points:
            space.validate(point.architecture)
            assert point.metrics["train_step_time"] > 0

    def test_front_is_nondominated(self):
        space, quality_fn, perf_fn = self.make_problem()
        config = FrontSearchConfig(
            target_scales=(0.75, 1.0, 1.5),
            search=SearchConfig(
                steps=60, num_cores=4, warmup_steps=5, policy_lr=0.15,
                policy_entropy_coef=0.1, record_candidates=False, seed=1,
            ),
        )
        result = trace_front(space, quality_fn, perf_fn, config)
        front = result.front()
        assert 1 <= len(front) <= len(result.points)
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    b.quality >= a.quality
                    and b.metrics["train_step_time"] <= a.metrics["train_step_time"]
                    and (
                        b.quality > a.quality
                        or b.metrics["train_step_time"] < a.metrics["train_step_time"]
                    )
                )
                assert not dominates

    def test_helpers(self):
        space, quality_fn, perf_fn = self.make_problem()
        config = FrontSearchConfig(
            target_scales=(0.8, 1.5),
            search=SearchConfig(
                steps=40, num_cores=4, warmup_steps=5, record_candidates=False, seed=2
            ),
        )
        result = trace_front(space, quality_fn, perf_fn, config)
        assert result.best_quality().quality >= result.fastest().quality - 1e-9
        assert (
            result.fastest().metrics["train_step_time"]
            <= result.best_quality().metrics["train_step_time"] + 1e-12
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FrontSearchConfig(target_scales=())
        with pytest.raises(ValueError):
            FrontSearchConfig(target_scales=(0.0,))
        with pytest.raises(ValueError):
            FrontSearchConfig(quality_weight=0.0)
