"""Tests for the LM transformer mode and hybrid ViT graph lowering."""

import numpy as np
import pytest

from repro.data import LmTaskConfig, LmTeacher
from repro.hardware import TPU_V4, simulate
from repro.models import VitBaseline, build_vit_graph
from repro.nn import Adam
from repro.searchspace import (
    VitSpaceConfig,
    hybrid_vit_search_space,
    vit_search_space,
)
from repro.supernet import TransformerSuperNetwork, TransformerSupernetConfig


class TestLmTeacher:
    def test_shapes(self):
        teacher = LmTeacher(LmTaskConfig(seq_len=6, batch_size=8))
        batch = teacher.next_batch()
        assert batch.inputs["x"].shape == (8, 6, 8)
        assert batch.labels.shape == (8, 6)

    def test_labels_in_range(self):
        teacher = LmTeacher(LmTaskConfig(batch_size=128, num_classes=4))
        labels = teacher.next_batch().labels
        assert labels.min() >= 0 and labels.max() < 4

    def test_bigram_dependence(self):
        """Labels depend on the previous position: shuffling the
        sequence changes (some) labels under the same teacher."""
        teacher = LmTeacher(LmTaskConfig(seq_len=8, batch_size=64, label_noise=0.0, seed=3))
        batch = teacher.next_batch()
        x = batch.inputs["x"]
        prev = np.concatenate([np.zeros_like(x[:, :1]), x[:, :-1]], axis=1)
        mixed = np.maximum(x @ teacher._w_current + prev @ teacher._w_previous, 0.0)
        recomputed = (mixed @ teacher._w_out).argmax(axis=-1)
        np.testing.assert_array_equal(recomputed, batch.labels)
        # Current-token-only model cannot reproduce all labels.
        solo = np.maximum(x @ teacher._w_current, 0.0)
        solo_labels = (solo @ teacher._w_out).argmax(axis=-1)
        assert (solo_labels != batch.labels).mean() > 0.05


class TestLmSupernet:
    def setup_net(self):
        space = vit_search_space(VitSpaceConfig(num_tfm_blocks=1))
        net = TransformerSuperNetwork(
            TransformerSupernetConfig(num_blocks=1, task="lm")
        )
        teacher = LmTeacher(LmTaskConfig(batch_size=32))
        return space, net, teacher

    def test_per_position_logits(self):
        space, net, teacher = self.setup_net()
        batch = teacher.next_batch()
        logits = net(space.default_architecture(), batch.inputs)
        assert logits.shape == (32, 8, 4)

    def test_loss_and_quality(self):
        space, net, teacher = self.setup_net()
        batch = teacher.next_batch()
        arch = space.default_architecture()
        assert net.loss(arch, batch.inputs, batch.labels).item() > 0
        assert 0.0 <= net.quality(arch, batch.inputs, batch.labels) <= 1.0

    def test_training_reduces_loss(self):
        space, net, teacher = self.setup_net()
        arch = space.default_architecture().replaced(**{"tfm0/hidden_size": 512})
        optimizer = Adam(net.parameters(), lr=0.003)
        losses = []
        for _ in range(40):
            batch = teacher.next_batch()
            optimizer.zero_grad()
            loss = net.loss(arch, batch.inputs, batch.labels)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_seq_pooling_rejected_in_lm_mode(self):
        space, net, teacher = self.setup_net()
        batch = teacher.next_batch()
        pooled = space.default_architecture().replaced(**{"tfm0/seq_pooling": True})
        with pytest.raises(ValueError, match="pooling"):
            net(pooled, batch.inputs)

    def test_task_validation(self):
        with pytest.raises(ValueError):
            TransformerSupernetConfig(task="translation")


class TestHybridLowering:
    def test_hybrid_archs_include_conv_blocks(self):
        space = hybrid_vit_search_space()
        arch = space.default_architecture()
        graph = build_vit_graph(VitBaseline(), arch, batch=2)
        assert any(op.name.startswith("conv0") for op in graph.nodes())
        assert any(op.name.startswith("t0l") for op in graph.nodes())

    def test_conv_stride_reduces_transformer_seq(self):
        space = hybrid_vit_search_space()
        base = space.default_architecture().replaced(
            **{"block0/stride": 1, "block1/stride": 1}
        )
        strided = base.replaced(**{"block0/stride": 2, "block1/stride": 2})
        g_base = build_vit_graph(VitBaseline(), base, batch=2)
        g_strided = build_vit_graph(VitBaseline(), strided, batch=2)
        qk_base = g_base.node("t0l0/qk")
        qk_strided = g_strided.node("t0l0/qk")
        assert qk_strided.flops < qk_base.flops  # seq^2 shrinks

    def test_pure_vit_space_has_no_conv(self):
        space = vit_search_space(VitSpaceConfig(num_tfm_blocks=2))
        graph = build_vit_graph(VitBaseline(), space.default_architecture(), batch=2)
        assert not any(op.name.startswith("conv") for op in graph.nodes())

    def test_all_hybrid_samples_simulate(self):
        space = hybrid_vit_search_space()
        rng = np.random.default_rng(1)
        for _ in range(10):
            graph = build_vit_graph(VitBaseline(), space.sample(rng), batch=2)
            time = simulate(graph, TPU_V4).total_time_s
            assert np.isfinite(time) and time > 0

    def test_fused_conv_blocks_priced_differently(self):
        space = hybrid_vit_search_space()
        base = space.default_architecture()
        fused = base.replaced(
            **{"block0/type": "fused_mbconv", "block1/type": "fused_mbconv"}
        )
        g_base = build_vit_graph(VitBaseline(), base, batch=2)
        g_fused = build_vit_graph(VitBaseline(), fused, batch=2)
        assert g_fused.total_flops > g_base.total_flops
