"""Tests for weight initializers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import initializers


def rng(seed=0):
    return np.random.default_rng(seed)


class TestGlorotUniform:
    def test_bounds(self):
        w = initializers.glorot_uniform(rng(), (64, 32))
        limit = np.sqrt(6.0 / (64 + 32))
        assert np.all(np.abs(w) <= limit)

    def test_shape(self):
        assert initializers.glorot_uniform(rng(), (3, 5)).shape == (3, 5)

    def test_deterministic_given_seed(self):
        a = initializers.glorot_uniform(rng(7), (4, 4))
        b = initializers.glorot_uniform(rng(7), (4, 4))
        np.testing.assert_array_equal(a, b)

    def test_vector_shape(self):
        w = initializers.glorot_uniform(rng(), (16,))
        limit = np.sqrt(6.0 / 32)
        assert np.all(np.abs(w) <= limit)


class TestHeNormal:
    def test_variance_scales_with_fan_in(self):
        w = initializers.he_normal(rng(), (1000, 50))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.15)

    def test_zero_mean(self):
        w = initializers.he_normal(rng(), (2000, 10))
        assert abs(w.mean()) < 0.01


class TestEmbeddingNormal:
    def test_small_variance(self):
        w = initializers.embedding_normal(rng(), (5000, 8))
        assert w.std() == pytest.approx(0.05, rel=0.1)


class TestZeros:
    def test_all_zero(self):
        np.testing.assert_array_equal(
            initializers.zeros(rng(), (3, 3)), np.zeros((3, 3))
        )


class TestFans:
    @given(st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_2d_fans(self, nin, nout):
        assert initializers._fans((nin, nout)) == (nin, nout)

    def test_1d_fans(self):
        assert initializers._fans((7,)) == (7, 7)

    def test_3d_fans(self):
        fan_in, fan_out = initializers._fans((3, 4, 5))
        assert fan_in == 12 and fan_out == 5
