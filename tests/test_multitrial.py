"""Tests for the multi-trial baselines and the NAS cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    NasCostModel,
    PerformanceObjective,
    RandomSearch,
    relu_reward,
)
from repro.searchspace import Decision, SearchSpace


def toy_space():
    return SearchSpace(
        "toy",
        [
            Decision("a", (0, 1, 2, 3)),
            Decision("b", (0, 1, 2, 3)),
            Decision("c", ("x", "y")),
        ],
    )


def toy_evaluate(arch):
    """Quality peaks at a=3, b=3, c='y'; cost grows with a."""
    quality = 0.2 * arch["a"] + 0.2 * arch["b"] + (0.3 if arch["c"] == "y" else 0.0)
    return quality, {"latency": 1.0 + 0.1 * arch["a"]}


def toy_reward():
    return relu_reward([PerformanceObjective("latency", 2.0, beta=-1.0)])


class TestRandomSearch:
    def test_finds_good_candidate(self):
        search = RandomSearch(toy_space(), toy_evaluate, toy_reward(), num_trials=200, seed=0)
        result = search.run()
        assert result.num_trials == 200
        assert result.best.reward == max(t.reward for t in result.trials)
        assert result.best.reward > 1.2  # near the optimum of 1.5

    def test_best_curve_monotone(self):
        search = RandomSearch(toy_space(), toy_evaluate, toy_reward(), num_trials=50, seed=1)
        curve = search.run().best_reward_curve()
        assert np.all(np.diff(curve) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSearch(toy_space(), toy_evaluate, toy_reward(), num_trials=0)

    def test_deterministic_given_seed(self):
        a = RandomSearch(toy_space(), toy_evaluate, toy_reward(), 30, seed=5).run()
        b = RandomSearch(toy_space(), toy_evaluate, toy_reward(), 30, seed=5).run()
        assert a.best.architecture == b.best.architecture


class TestEvolutionarySearch:
    def test_finds_optimum(self):
        config = EvolutionConfig(population_size=10, tournament_size=3, num_trials=150)
        search = EvolutionarySearch(toy_space(), toy_evaluate, toy_reward(), config, seed=0)
        result = search.run()
        best = result.best.architecture
        assert best["a"] == 3 and best["b"] == 3 and best["c"] == "y"

    def test_beats_random_on_average(self):
        """Evolution exploits structure that random sampling cannot."""
        budget = 60
        evo_best, rnd_best = [], []
        for seed in range(5):
            config = EvolutionConfig(population_size=10, tournament_size=3, num_trials=budget)
            evo = EvolutionarySearch(toy_space(), toy_evaluate, toy_reward(), config, seed=seed)
            rnd = RandomSearch(toy_space(), toy_evaluate, toy_reward(), budget, seed=seed)
            evo_best.append(evo.run().best.reward)
            rnd_best.append(rnd.run().best.reward)
        assert np.mean(evo_best) >= np.mean(rnd_best) - 1e-9

    def test_mutation_changes_exactly_requested_decisions(self):
        config = EvolutionConfig(population_size=2, tournament_size=1, num_trials=2)
        search = EvolutionarySearch(toy_space(), toy_evaluate, toy_reward(), config, seed=0)
        parent = toy_space().default_architecture()
        child = search.mutate(parent)
        differences = sum(parent[k] != child[k] for k in parent)
        assert differences == 1

    def test_population_ages_out(self):
        config = EvolutionConfig(population_size=5, tournament_size=2, num_trials=30)
        search = EvolutionarySearch(toy_space(), toy_evaluate, toy_reward(), config, seed=2)
        result = search.run()
        assert result.num_trials == 30

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EvolutionConfig(population_size=1)
        with pytest.raises(ValueError):
            EvolutionConfig(population_size=5, tournament_size=6)
        with pytest.raises(ValueError):
            EvolutionConfig(population_size=10, num_trials=5)
        with pytest.raises(ValueError):
            EvolutionConfig(mutations_per_child=0)

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_mutation_always_valid(self, seed):
        config = EvolutionConfig(population_size=2, tournament_size=1, num_trials=2)
        search = EvolutionarySearch(toy_space(), toy_evaluate, toy_reward(), config, seed=seed)
        child = search.mutate(toy_space().sample(np.random.default_rng(seed)))
        toy_space().validate(child)


class TestNasCostModel:
    def test_one_shot_multiple_matches_paper(self):
        model = NasCostModel(vanilla_training_hours=1000.0)
        assert model.one_shot_multiple() == pytest.approx(2.5)

    def test_multi_trial_scales_linearly(self):
        model = NasCostModel(vanilla_training_hours=100.0)
        assert model.multi_trial_hours(50) == pytest.approx(5000.0)

    def test_one_shot_advantage(self):
        model = NasCostModel(vanilla_training_hours=100.0)
        assert model.one_shot_advantage(250) == pytest.approx(100.0)

    def test_downstream_fraction_matches_paper_scale(self):
        """Paper: NAS hours < 0.03% of downstream serving/research hours."""
        model = NasCostModel(vanilla_training_hours=1000.0)
        fraction = model.downstream_fraction(downstream_hours=10_000_000.0)
        assert fraction < 0.0003

    def test_validation(self):
        with pytest.raises(ValueError):
            NasCostModel(vanilla_training_hours=0.0)
        model = NasCostModel(vanilla_training_hours=10.0)
        with pytest.raises(ValueError):
            model.multi_trial_hours(0)
        with pytest.raises(ValueError):
            model.downstream_fraction(0.0)
