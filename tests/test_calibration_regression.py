"""Regression tests pinning the reproduction's calibration anchors.

The benchmark suite validates *shape* claims; these fast tests pin the
specific calibrated quantities the shapes depend on, so an innocent
refactor cannot silently drift the paper-matching numbers.  Each test
names the paper artifact it protects.
"""

import pytest

from repro.hardware import TPU_V4, TPU_V4I, HardwareTestbed, simulate
from repro.models import COATNET, COATNET_H, baseline_production_dlrm, dlrm_h
from repro.models.coatnet import build_graph as build_coatnet
from repro.models.coatnet import num_params as coatnet_params
from repro.models.dlrm import build_graph as build_dlrm
from repro.models.dlrm import pipeline_times
from repro.quality import DlrmQualityModel, coatnet_quality
from repro.searchspace import table5_size_rows


class TestTable5Anchors:
    def test_space_sizes_pinned(self):
        rows = table5_size_rows()
        assert rows["cnn"].log10_size == pytest.approx(39.3, abs=0.15)
        assert rows["dlrm"].log10_size == pytest.approx(282.0, abs=0.15)
        assert rows["vit"].log10_size == pytest.approx(8.5, abs=0.15)
        assert rows["hybrid_vit"].log10_size == pytest.approx(21.6, abs=0.15)


class TestTable3Anchors:
    def test_quality_ladder_pinned(self):
        base = COATNET["5"]
        assert coatnet_quality(base) == pytest.approx(89.7, abs=0.1)
        assert coatnet_quality(base.with_deeper_conv(4)) == pytest.approx(90.3, abs=0.1)
        assert coatnet_quality(
            base.with_deeper_conv(4).with_resolution(160)
        ) == pytest.approx(88.9, abs=0.1)
        assert coatnet_quality(COATNET_H["5"]) == pytest.approx(89.7, abs=0.1)

    def test_c5_size_pinned(self):
        assert coatnet_params(COATNET["5"]) / 1e6 == pytest.approx(697, abs=15)

    def test_flops_halving_pinned(self):
        g5 = build_coatnet(COATNET["5"], batch=4)
        gh5 = build_coatnet(COATNET_H["5"], batch=4)
        assert gh5.total_flops / g5.total_flops == pytest.approx(0.49, abs=0.05)


class TestFigure7Anchors:
    def test_speedup_and_traffic_pinned(self):
        r5 = simulate(build_coatnet(COATNET["5"], batch=64), TPU_V4)
        rh5 = simulate(build_coatnet(COATNET_H["5"], batch=64), TPU_V4)
        assert r5.total_time_s / rh5.total_time_s == pytest.approx(2.1, abs=0.3)
        assert rh5.hbm_bytes / r5.hbm_bytes == pytest.approx(0.53, abs=0.1)


class TestFigure8Anchors:
    def test_dlrm_rebalance_pinned(self):
        base = baseline_production_dlrm()
        searched = dlrm_h(base)
        t_base = pipeline_times(simulate(build_dlrm(base), TPU_V4))
        t_h = pipeline_times(simulate(build_dlrm(searched), TPU_V4))
        assert t_h["step"] / t_base["step"] == pytest.approx(0.90, abs=0.05)
        quality = DlrmQualityModel(base)
        delta = quality.quality(searched) - quality.quality(base)
        assert delta == pytest.approx(0.02, abs=0.01)


class TestTestbedAnchors:
    def test_simulator_hardware_gap_band(self):
        """Table 1's premise: a systematic tens-of-percent gap."""
        from repro.graph import OpGraph, ops

        graph = OpGraph("probe")
        graph.chain([ops.dense(f"fc{i}", 256, 2048, 2048) for i in range(8)])
        bed = HardwareTestbed(TPU_V4)
        gap = bed.deterministic_time(graph) / bed.simulate(graph).total_time_s - 1.0
        assert 0.15 < gap < 0.45

    def test_ridge_points_pinned(self):
        assert TPU_V4.ridge_intensity == pytest.approx(224, abs=5)
        assert TPU_V4I.ridge_intensity == pytest.approx(225, abs=10)
