"""Wire-protocol edge cases: framing is where services rot first.

The service speaks two framings — newline-delimited JSON for the verb
protocol and 8-byte length-prefixed binary frames for the distributed
engine transport — both built on the shared helpers in
:mod:`repro.service.protocol`.  These tests pin the failure modes the
old per-module ``_read_line`` copies got wrong:

* a slow writer splitting one request across many tiny ``send``\\ s;
* trailing bytes arriving in the same segment as the newline;
* EOF mid-line (peer died) raising ``ProtocolError("truncated frame")``
  on *both* sides rather than handing a partial buffer to ``json``;
* an oversized request drawing a typed ``protocol_error`` reply
  instead of killing the daemon's connection handler mid-read.
"""

import json
import socket
import threading
import time

import pytest

from repro.service import DaemonConfig, SchedulerConfig, ServiceClient, ServiceDaemon
from repro.service.daemon import MAX_REQUEST_BYTES
from repro.service.protocol import (
    FRAME_HEADER,
    ProtocolError,
    read_frame,
    read_line,
    recv_exact,
    write_frame,
)


def _pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


class TestReadLine:
    def test_slow_writer_many_small_sends(self):
        reader, writer = _pair()
        payload = b'{"verb": "ping", "padding": "' + b"x" * 300 + b'"}'

        def drip():
            for i in range(0, len(payload), 7):
                writer.sendall(payload[i : i + 7])
                time.sleep(0.002)
            writer.sendall(b"\n")

        thread = threading.Thread(target=drip)
        thread.start()
        try:
            assert read_line(reader) == payload
        finally:
            thread.join()
            reader.close()
            writer.close()

    def test_trailing_bytes_after_newline_ignored(self):
        reader, writer = _pair()
        writer.sendall(b"first line\nsecond line that must not leak")
        try:
            assert read_line(reader) == b"first line"
        finally:
            reader.close()
            writer.close()

    def test_clean_eof_returns_empty(self):
        reader, writer = _pair()
        writer.close()
        try:
            assert read_line(reader) == b""
        finally:
            reader.close()

    def test_eof_mid_line_is_truncated_frame(self):
        reader, writer = _pair()
        writer.sendall(b'{"verb": "subm')  # peer dies mid-request
        writer.close()
        try:
            with pytest.raises(ProtocolError, match="truncated frame"):
                read_line(reader)
        finally:
            reader.close()

    def test_over_limit_line_raises(self):
        reader, writer = _pair()
        writer.sendall(b"y" * 4096)
        try:
            with pytest.raises(ProtocolError, match="exceeds"):
                read_line(reader, max_bytes=1024)
        finally:
            reader.close()
            writer.close()

    def test_newline_within_limit_wins_over_size_check(self):
        # The newline can arrive in the same chunk that crosses
        # max_bytes; a terminated line is a complete line, not oversize.
        reader, writer = _pair()
        line = b"z" * 1000
        writer.sendall(line + b"\n")
        try:
            assert read_line(reader, max_bytes=1000) == line
        finally:
            reader.close()
            writer.close()


class TestBinaryFrames:
    def test_round_trip(self):
        reader, writer = _pair()
        try:
            write_frame(writer, b"hello frames")
            write_frame(writer, b"")  # zero-length frames are legal
            write_frame(writer, b"\x00" * 70000)  # multi-recv payload
            assert read_frame(reader) == b"hello frames"
            assert read_frame(reader) == b""
            assert read_frame(reader) == b"\x00" * 70000
        finally:
            reader.close()
            writer.close()

    def test_clean_eof_between_frames_is_none(self):
        reader, writer = _pair()
        write_frame(writer, b"last")
        writer.close()
        try:
            assert read_frame(reader) == b"last"
            assert read_frame(reader) is None
        finally:
            reader.close()

    def test_eof_inside_header_is_truncated(self):
        reader, writer = _pair()
        writer.sendall(FRAME_HEADER.pack(100)[:3])  # 3 of 8 header bytes
        writer.close()
        try:
            with pytest.raises(ProtocolError, match="truncated frame"):
                read_frame(reader)
        finally:
            reader.close()

    def test_eof_inside_payload_is_truncated(self):
        reader, writer = _pair()
        writer.sendall(FRAME_HEADER.pack(100) + b"only twenty bytes...")
        writer.close()
        try:
            with pytest.raises(ProtocolError, match="truncated frame"):
                read_frame(reader)
        finally:
            reader.close()

    def test_oversize_frame_rejected_before_payload(self):
        reader, writer = _pair()
        writer.sendall(FRAME_HEADER.pack(1 << 40))  # 1 TiB claim, no body
        try:
            with pytest.raises(ProtocolError, match="exceeds"):
                read_frame(reader, max_bytes=1 << 20)
        finally:
            reader.close()
            writer.close()

    def test_recv_exact_none_only_at_byte_zero(self):
        reader, writer = _pair()
        writer.close()
        try:
            assert recv_exact(reader, 8) is None
        finally:
            reader.close()
        reader, writer = _pair()
        writer.sendall(b"abc")
        writer.close()
        try:
            with pytest.raises(ProtocolError, match="5 of 8"):
                recv_exact(reader, 8)
        finally:
            reader.close()


@pytest.fixture()
def daemon(tmp_path):
    config = DaemonConfig(
        spool=tmp_path / "spool",
        scheduler=SchedulerConfig(
            max_concurrent=1, poll_interval_s=0.005, backend="serial"
        ),
        accept_timeout_s=0.05,
    )
    instance = ServiceDaemon(config)
    thread = threading.Thread(target=instance.serve, daemon=True)
    thread.start()
    client = ServiceClient(instance.socket_path, timeout=30.0)
    client.wait_ready(timeout=10.0)
    yield instance, client
    instance.request_drain()
    thread.join(timeout=30.0)
    assert not thread.is_alive()


def _raw_connect(instance):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(str(instance.socket_path))
    return sock


class TestDaemonFraming:
    """The same edges end-to-end, against a live daemon."""

    def test_slow_writer_gets_normal_reply(self, daemon):
        instance, _ = daemon
        sock = _raw_connect(instance)
        request = json.dumps({"v": 1, "verb": "ping", "args": {}}).encode() + b"\n"
        try:
            for i in range(0, len(request), 5):
                sock.sendall(request[i : i + 5])
                time.sleep(0.002)
            reply = json.loads(read_line(sock))
        finally:
            sock.close()
        assert reply["ok"] is True
        assert reply["data"]["queued"] == 0

    def test_trailing_bytes_after_request_ignored(self, daemon):
        instance, _ = daemon
        sock = _raw_connect(instance)
        request = json.dumps({"v": 1, "verb": "ping", "args": {}}).encode()
        try:
            sock.sendall(request + b"\n" + b"garbage after the newline")
            reply = json.loads(read_line(sock))
        finally:
            sock.close()
        assert reply["ok"] is True

    def test_client_death_mid_request_gets_typed_error(self, daemon):
        # Half-close after a partial line: daemon-side read_line raises
        # the truncated-frame ProtocolError *inside* the typed-error
        # envelope, so the daemon survives and we still get a reply.
        instance, client = daemon
        sock = _raw_connect(instance)
        try:
            sock.sendall(b'{"v": 1, "verb": "pi')
            sock.shutdown(socket.SHUT_WR)
            reply = json.loads(read_line(sock))
        finally:
            sock.close()
        assert reply["ok"] is False
        assert reply["error"]["code"] == "protocol_error"
        assert "truncated frame" in reply["error"]["message"]
        assert client.ping()["pid"]  # daemon still serving

    def test_oversized_request_gets_typed_error(self, daemon):
        # Regression: the read used to happen before the ServiceError
        # try block, so an oversized request killed the handler with no
        # reply.  Now it must come back as a typed protocol_error.
        instance, client = daemon
        big = json.dumps(
            {"v": 1, "verb": "submit",
             "args": {"tenant": "a", "spec": {"pad": "x" * (2 * MAX_REQUEST_BYTES)}}}
        ).encode() + b"\n"
        sock = _raw_connect(instance)
        try:
            try:
                sock.sendall(big)
            except BrokenPipeError:
                # The daemon rejected at the limit and hung up while we
                # were still sending; the typed reply is already queued.
                pass
            reply = json.loads(read_line(sock))
        finally:
            sock.close()
        assert reply["ok"] is False
        assert reply["error"]["code"] == "protocol_error"
        assert str(MAX_REQUEST_BYTES) in reply["error"]["message"]
        assert client.ping()["pid"]  # handler death would strand the socket

    def test_client_raises_truncated_on_daemon_death_mid_reply(self, tmp_path):
        # A fake daemon that replies with half a line then hangs up:
        # the client must classify it as a truncated frame, not attempt
        # to JSON-decode the fragment.
        path = tmp_path / "fake.sock"
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(str(path))
        server.listen(1)

        def half_reply():
            conn, _ = server.accept()
            read_line(conn)  # consume the request
            conn.sendall(b'{"v": 1, "ok": tr')  # die mid-reply
            conn.close()

        thread = threading.Thread(target=half_reply)
        thread.start()
        try:
            with pytest.raises(ProtocolError, match="truncated frame"):
                ServiceClient(path, timeout=10.0).ping()
        finally:
            thread.join()
            server.close()

    def test_client_raises_on_empty_reply(self, tmp_path):
        path = tmp_path / "mute.sock"
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(str(path))
        server.listen(1)

        def mute():
            conn, _ = server.accept()
            read_line(conn)
            conn.close()  # clean close, zero reply bytes

        thread = threading.Thread(target=mute)
        thread.start()
        try:
            with pytest.raises(ProtocolError, match="without replying"):
                ServiceClient(path, timeout=10.0).ping()
        finally:
            thread.join()
            server.close()
