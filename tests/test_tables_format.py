"""Additional formatting edge-case tests."""

import pytest

from repro.analysis import format_series, format_table
from repro.analysis.tables import _cell


class TestCellFormatting:
    def test_zero(self):
        assert _cell(0.0) == "0"

    def test_small_magnitude_scientific(self):
        assert "e-" in _cell(1.5e-7)

    def test_negative_values(self):
        assert _cell(-2.5).startswith("-")

    def test_plain_ints_and_strings(self):
        assert _cell(42) == "42"
        assert _cell("abc") == "abc"

    def test_bools_pass_through(self):
        assert _cell(True) == "True"

    def test_mid_range_float_compact(self):
        out = _cell(1234.5678)
        assert "e" not in out and len(out) <= 8


class TestTableEdges:
    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert out.splitlines()[0].startswith("a")
        assert len(out.splitlines()) == 2

    def test_wide_cells_set_column_width(self):
        out = format_table(["h"], [["a-very-long-cell"]])
        header, sep, row = out.splitlines()
        assert len(sep) == len("a-very-long-cell")

    def test_series_empty(self):
        out = format_series("empty", [])
        assert out == "series: empty"
