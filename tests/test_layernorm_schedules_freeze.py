"""Tests for LayerNorm, LR schedules, and search-space freezing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    CosineSchedule,
    LayerNorm,
    ScheduledOptimizer,
    SGD,
    StepDecaySchedule,
    Tensor,
)
from repro.searchspace import Decision, SearchSpace, VitSpaceConfig, vit_search_space


class TestLayerNorm:
    def test_output_statistics(self):
        rng = np.random.default_rng(0)
        norm = LayerNorm(16)
        out = norm(Tensor(rng.normal(3.0, 5.0, size=(4, 16))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_gain_and_bias_applied(self):
        norm = LayerNorm(4)
        norm.gain.data[:] = 2.0
        norm.bias.data[:] = 1.0
        out = norm(Tensor(np.random.default_rng(1).normal(size=(3, 4))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 1.0, atol=1e-6)

    def test_gradient_flows_numerically(self):
        rng = np.random.default_rng(2)
        val = rng.normal(size=(2, 5))
        x = Tensor(val.copy(), requires_grad=True)
        norm = LayerNorm(5)
        weights = np.arange(10.0).reshape(2, 5)
        (norm(x) * Tensor(weights)).sum().backward()

        def fn(arr):
            mean = arr.mean(axis=-1, keepdims=True)
            centered = arr - mean
            var = (centered**2).mean(axis=-1, keepdims=True)
            return float(((centered / np.sqrt(var + 1e-5)) * weights).sum())

        eps = 1e-6
        numeric = np.zeros_like(val)
        for i in range(val.shape[0]):
            for j in range(val.shape[1]):
                hi, lo = val.copy(), val.copy()
                hi[i, j] += eps
                lo[i, j] -= eps
                numeric[i, j] = (fn(hi) - fn(lo)) / (2 * eps)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-3, atol=1e-6)

    def test_masked_mode_keeps_inactive_zero(self):
        norm = LayerNorm(8)
        x = np.zeros((2, 8))
        x[:, :4] = np.random.default_rng(3).normal(5.0, 2.0, size=(2, 4))
        out = norm(Tensor(x), active_width=4)
        np.testing.assert_allclose(out.data[:, 4:], 0.0)
        np.testing.assert_allclose(out.data[:, :4].mean(axis=-1), 0.0, atol=1e-6)

    def test_masked_stats_ignore_padding(self):
        """Stats over the active block match a dense LayerNorm of it."""
        rng = np.random.default_rng(4)
        active = rng.normal(2.0, 3.0, size=(3, 4))
        padded = np.zeros((3, 8))
        padded[:, :4] = active
        wide = LayerNorm(8)
        narrow = LayerNorm(4)
        out_wide = wide(Tensor(padded), active_width=4)
        out_narrow = narrow(Tensor(active))
        np.testing.assert_allclose(out_wide.data[:, :4], out_narrow.data, atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            LayerNorm(0)
        with pytest.raises(ValueError):
            LayerNorm(4)(Tensor(np.ones((1, 4))), active_width=5)

    def test_parameters_registered(self):
        assert len(LayerNorm(4).parameters()) == 2


class TestCosineSchedule:
    def test_warmup_ramps_linearly(self):
        schedule = CosineSchedule(total_steps=100, warmup_steps=10)
        assert schedule.multiplier(0) == pytest.approx(0.1)
        assert schedule.multiplier(9) == pytest.approx(1.0)

    def test_decays_to_final_fraction(self):
        schedule = CosineSchedule(total_steps=100, final_fraction=0.1)
        assert schedule.multiplier(0) == pytest.approx(1.0)
        assert schedule.multiplier(99) == pytest.approx(0.1, abs=0.01)
        assert schedule.multiplier(500) == pytest.approx(0.1, abs=1e-9)

    def test_monotone_after_warmup(self):
        schedule = CosineSchedule(total_steps=50, warmup_steps=5)
        values = [schedule.multiplier(s) for s in range(5, 50)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineSchedule(total_steps=0)
        with pytest.raises(ValueError):
            CosineSchedule(total_steps=10, warmup_steps=10)
        with pytest.raises(ValueError):
            CosineSchedule(total_steps=10, final_fraction=1.5)
        with pytest.raises(ValueError):
            CosineSchedule(total_steps=10).multiplier(-1)


class TestStepDecay:
    def test_halves_every_period(self):
        schedule = StepDecaySchedule(step_size=10, gamma=0.5)
        assert schedule.multiplier(0) == 1.0
        assert schedule.multiplier(10) == 0.5
        assert schedule.multiplier(25) == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecaySchedule(step_size=0)
        with pytest.raises(ValueError):
            StepDecaySchedule(step_size=5, gamma=0.0)


class TestScheduledOptimizer:
    def test_lr_follows_schedule(self):
        w = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = ScheduledOptimizer(
            SGD([w], lr=1.0), StepDecaySchedule(step_size=1, gamma=0.5)
        )
        lrs = []
        for _ in range(3):
            optimizer.zero_grad()
            (w * 1.0).sum().backward()
            lrs.append(optimizer.current_lr)
            optimizer.step()
        assert lrs == [1.0, 0.5, 0.25]

    def test_training_still_converges(self):
        w = Tensor(np.array([5.0]), requires_grad=True)
        optimizer = ScheduledOptimizer(
            Adam([w], lr=0.2), CosineSchedule(total_steps=200, warmup_steps=10)
        )
        for _ in range(200):
            optimizer.zero_grad()
            (w * w).sum().backward()
            optimizer.step()
        assert abs(w.item()) < 0.1


class TestFrozenSpace:
    def test_freeze_pins_decision(self):
        space = SearchSpace("s", [Decision("a", (0, 1, 2)), Decision("b", ("x", "y"))])
        frozen = space.frozen({"b": "y"})
        assert frozen.decision("b").choices == ("y",)
        assert frozen.cardinality() == 3
        rng = np.random.default_rng(0)
        assert all(frozen.sample(rng)["b"] == "y" for _ in range(10))

    def test_frozen_archs_valid_in_original_space(self):
        space = vit_search_space(VitSpaceConfig(num_tfm_blocks=1))
        frozen = space.frozen({"tfm0/seq_pooling": False})
        arch = frozen.sample(np.random.default_rng(1))
        space.validate(arch)  # still a full assignment of the original

    def test_illegal_value_rejected(self):
        space = SearchSpace("s", [Decision("a", (0, 1))])
        with pytest.raises(ValueError):
            space.frozen({"a": 7})

    def test_unknown_decision_rejected(self):
        space = SearchSpace("s", [Decision("a", (0, 1))])
        with pytest.raises(KeyError):
            space.frozen({"zzz": 0})

    def test_name_defaults(self):
        space = SearchSpace("s", [Decision("a", (0, 1))])
        assert space.frozen({"a": 1}).name == "s_frozen"
        assert space.frozen({"a": 1}, name="pinned").name == "pinned"
