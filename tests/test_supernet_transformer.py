"""Tests for the transformer proxy super-network (ViT space)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SequenceTaskConfig, SequenceTeacher
from repro.nn import Adam, Tensor
from repro.searchspace import VitSpaceConfig, vit_search_space
from repro.supernet import TransformerSuperNetwork, TransformerSupernetConfig
from repro.supernet.transformer import _slice_last, _slice_seq


def setup(num_blocks=1, seq_len=8):
    space = vit_search_space(VitSpaceConfig(num_tfm_blocks=num_blocks))
    net = TransformerSuperNetwork(TransformerSupernetConfig(num_blocks=num_blocks))
    teacher = SequenceTeacher(SequenceTaskConfig(seq_len=seq_len, batch_size=32))
    return space, net, teacher


class TestSequenceTeacher:
    def test_shapes(self):
        teacher = SequenceTeacher(SequenceTaskConfig(seq_len=6, batch_size=8))
        batch = teacher.next_batch()
        assert batch.inputs["x"].shape == (8, 6, 8)
        assert batch.labels.shape == (8,)

    def test_labels_cover_classes(self):
        teacher = SequenceTeacher(SequenceTaskConfig(batch_size=512, seed=2))
        labels = teacher.next_batch().labels
        assert len(np.unique(labels)) == 4

    def test_deterministic(self):
        a = SequenceTeacher(SequenceTaskConfig(seed=5)).next_batch()
        b = SequenceTeacher(SequenceTaskConfig(seed=5)).next_batch()
        np.testing.assert_array_equal(a.inputs["x"], b.inputs["x"])


class TestSliceHelpers:
    def test_slice_last_selects_block(self):
        x = Tensor(np.arange(12, dtype=np.float64).reshape(1, 2, 6), requires_grad=True)
        out = _slice_last(x, 2, 4, active=2)
        np.testing.assert_allclose(out.data, x.data[:, :, 2:4])
        out.sum().backward()
        expected = np.zeros((1, 2, 6))
        expected[:, :, 2:4] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_slice_last_masks_inactive(self):
        x = Tensor(np.ones((1, 2, 6)))
        out = _slice_last(x, 0, 3, active=2)
        np.testing.assert_allclose(out.data[:, :, 2], 0.0)

    def test_slice_seq(self):
        x = Tensor(np.arange(24, dtype=np.float64).reshape(1, 4, 6))
        out = _slice_seq(x, 2)
        assert out.shape == (1, 2, 6)
        np.testing.assert_allclose(out.data, x.data[:, :2, :])

    def test_slice_seq_noop(self):
        x = Tensor(np.ones((1, 4, 6)))
        assert _slice_seq(x, 4) is x


class TestTransformerSupernet:
    def test_forward_shape(self):
        space, net, teacher = setup()
        batch = teacher.next_batch()
        logits = net(space.default_architecture(), batch.inputs)
        assert logits.shape == (32, 4)

    def test_any_sampled_arch_runs(self):
        space, net, teacher = setup()
        batch = teacher.next_batch()
        rng = np.random.default_rng(0)
        for _ in range(10):
            logits = net(space.sample(rng), batch.inputs)
            assert np.all(np.isfinite(logits.data))

    def test_seq_pooling_halves_sequence_effect(self):
        # Pooling after the FIRST of two blocks changes what the second
        # block attends over.  (After the last block it feeds a global
        # mean pool, where halving by pair-averaging is a no-op.)
        space, net, teacher = setup(num_blocks=2)
        batch = teacher.next_batch()
        base = space.default_architecture()
        pooled = base.replaced(**{"tfm0/seq_pooling": True})
        assert not np.allclose(
            net(base, batch.inputs).data, net(pooled, batch.inputs).data
        )

    def test_odd_sequence_pooling(self):
        space, net, _ = setup(seq_len=7)
        teacher = SequenceTeacher(SequenceTaskConfig(seq_len=7, batch_size=4))
        batch = teacher.next_batch()
        arch = space.default_architecture().replaced(**{"tfm0/seq_pooling": True})
        logits = net(arch, batch.inputs)
        assert np.all(np.isfinite(logits.data))

    def test_hidden_size_changes_output(self):
        space, net, teacher = setup()
        batch = teacher.next_batch()
        small = space.default_architecture().replaced(**{"tfm0/hidden_size": 64})
        large = space.default_architecture().replaced(**{"tfm0/hidden_size": 1024})
        assert not np.allclose(
            net(small, batch.inputs).data, net(large, batch.inputs).data
        )

    def test_low_rank_changes_output(self):
        space, net, teacher = setup()
        batch = teacher.next_batch()
        base = space.default_architecture().replaced(**{"tfm0/hidden_size": 512})
        factored = base.replaced(**{"tfm0/low_rank": 0.2})
        assert not np.allclose(
            net(base, batch.inputs).data, net(factored, batch.inputs).data
        )

    def test_primer_adds_gate(self):
        space, net, teacher = setup()
        batch = teacher.next_batch()
        base = space.default_architecture()
        primed = base.replaced(**{"tfm0/primer": True})
        assert not np.allclose(
            net(base, batch.inputs).data, net(primed, batch.inputs).data
        )

    def test_squared_relu_activation_supported(self):
        space, net, teacher = setup()
        batch = teacher.next_batch()
        arch = space.default_architecture().replaced(**{"tfm0/activation": "squared_relu"})
        assert np.all(np.isfinite(net(arch, batch.inputs).data))

    def test_training_reduces_loss(self):
        space, net, teacher = setup()
        arch = space.default_architecture().replaced(**{"tfm0/hidden_size": 512})
        optimizer = Adam(net.parameters(), lr=0.003)
        losses = []
        for _ in range(40):
            batch = teacher.next_batch()
            optimizer.zero_grad()
            loss = net.loss(arch, batch.inputs, batch.labels)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_quality_bounds(self):
        space, net, teacher = setup()
        batch = teacher.next_batch()
        q = net.quality(space.default_architecture(), batch.inputs, batch.labels)
        assert 0.0 <= q <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransformerSupernetConfig(width_divisor=0)
        with pytest.raises(ValueError):
            TransformerSupernetConfig(base_depth=0)

    def test_proxy_width_mapping(self):
        cfg = TransformerSupernetConfig(width_divisor=8)
        assert cfg.proxy_width(64) == 8
        assert cfg.proxy_width(1024) == 128
        assert cfg.max_width == 128

    @given(st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_forward_finite_for_random_arch(self, seed):
        space, net, teacher = setup()
        batch = teacher.next_batch()
        arch = space.sample(np.random.default_rng(seed))
        assert np.all(np.isfinite(net(arch, batch.inputs).data))


class TestTensorSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 5)))
        probs = x.softmax(axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=-1), 1.0)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        val = rng.normal(size=(2, 4))
        x = Tensor(val.copy(), requires_grad=True)
        (x.softmax(axis=-1) * Tensor(np.arange(8.0).reshape(2, 4))).sum().backward()

        def fn(arr):
            e = np.exp(arr - arr.max(axis=-1, keepdims=True))
            probs = e / e.sum(axis=-1, keepdims=True)
            return float((probs * np.arange(8.0).reshape(2, 4)).sum())

        eps = 1e-6
        numeric = np.zeros_like(val)
        for i in range(val.shape[0]):
            for j in range(val.shape[1]):
                up, down = val.copy(), val.copy()
                up[i, j] += eps
                down[i, j] -= eps
                numeric[i, j] = (fn(up) - fn(down)) / (2 * eps)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-4, atol=1e-7)

    def test_invariant_to_shift(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]]))
        shifted = Tensor(np.array([[101.0, 102.0, 103.0]]))
        np.testing.assert_allclose(x.softmax().data, shifted.softmax().data)
