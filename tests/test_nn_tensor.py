"""Unit tests for the autograd engine: gradients checked numerically."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, as_tensor, concatenate


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_unary(op_name, data, **kwargs):
    x = Tensor(np.array(data, dtype=np.float64), requires_grad=True)
    out = getattr(x, op_name)(**kwargs)
    out.sum().backward()

    def fn(arr):
        return float(getattr(Tensor(arr), op_name)(**kwargs).data.sum())

    expected = numerical_grad(fn, np.array(data, dtype=np.float64))
    np.testing.assert_allclose(x.grad, expected, rtol=1e-4, atol=1e-6)


class TestElementwiseGradients:
    def test_relu(self):
        check_unary("relu", [[-1.5, 0.3], [2.0, -0.1]])

    def test_squared_relu(self):
        check_unary("squared_relu", [[-1.5, 0.3], [2.0, -0.1]])

    def test_sigmoid(self):
        check_unary("sigmoid", [[-1.5, 0.3], [2.0, -0.1]])

    def test_swish(self):
        check_unary("swish", [[-1.5, 0.3], [2.0, -0.1]])

    def test_gelu(self):
        check_unary("gelu", [[-1.5, 0.3], [2.0, -0.1]])

    def test_tanh(self):
        check_unary("tanh", [[-1.5, 0.3], [2.0, -0.1]])

    def test_exp(self):
        check_unary("exp", [[0.5, -0.3], [1.0, 0.1]])

    def test_log(self):
        check_unary("log", [[0.5, 0.3], [1.0, 2.5]])

    def test_squared_relu_matches_definition(self):
        x = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        out = Tensor(x).squared_relu()
        np.testing.assert_allclose(out.data, np.maximum(x, 0) ** 2)


class TestArithmeticGradients:
    def test_add_broadcast(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_gradients(self):
        rng = np.random.default_rng(2)
        a_val = rng.normal(size=(2, 3))
        b_val = rng.normal(size=(2, 3))
        a, b = Tensor(a_val, requires_grad=True), Tensor(b_val, requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b_val)
        np.testing.assert_allclose(b.grad, a_val)

    def test_div_gradients_numerical(self):
        rng = np.random.default_rng(3)
        a_val = rng.normal(size=(2, 2))
        b_val = rng.uniform(0.5, 2.0, size=(2, 2))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(
            a.grad, numerical_grad(lambda arr: float((arr / b_val).sum()), a_val.copy()), rtol=1e-5
        )
        np.testing.assert_allclose(
            b.grad, numerical_grad(lambda arr: float((a_val / arr).sum()), b_val.copy()), rtol=1e-4
        )

    def test_pow_gradient(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        (x**3).sum().backward()
        np.testing.assert_allclose(x.grad, 3 * np.array([1.0, 2.0, 3.0]) ** 2)

    def test_matmul_gradients(self):
        rng = np.random.default_rng(4)
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 5))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b_val.T)
        np.testing.assert_allclose(b.grad, a_val.T @ np.ones((3, 5)))

    def test_matmul_batched(self):
        rng = np.random.default_rng(5)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_sub_and_neg(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [-1.0, -1.0])


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(12, dtype=np.float64).reshape(3, 4), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.backward(np.ones((3, 1)))
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_sum_axis_no_keepdims(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_mean(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 5), 0.1))

    def test_mean_axis(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 5), 0.2))

    def test_reshape_roundtrip(self):
        x = Tensor(np.arange(6, dtype=np.float64), requires_grad=True)
        out = x.reshape(2, 3)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_transpose(self):
        x = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3), requires_grad=True)
        out = x.transpose()
        assert out.shape == (3, 2)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_gather_rows_accumulates_duplicates(self):
        table = Tensor(np.arange(12, dtype=np.float64).reshape(4, 3), requires_grad=True)
        out = table.gather_rows(np.array([0, 0, 2]))
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 2.0
        expected[2] = 1.0
        np.testing.assert_allclose(table.grad, expected)

    def test_mask_blocks_gradient(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        mask = np.array([1.0, 1.0, 0.0, 0.0])
        x.mask(mask).sum().backward()
        np.testing.assert_allclose(x.grad, np.tile(mask, (2, 1)))

    def test_concatenate(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))


class TestBackwardMechanics:
    def test_diamond_graph_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = x * 4.0
        (y + z).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_reused_node_multiple_paths(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x  # d/dx = 2x = 6
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            x.backward()

    def test_backward_without_grad_tracking_raises(self):
        x = Tensor(np.ones(1))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x.detach() * 5.0
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_as_tensor_passthrough(self):
        x = Tensor(np.ones(2))
        assert as_tensor(x) is x
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)


class TestPropertyBased:
    @given(
        st.lists(st.floats(-5, 5), min_size=1, max_size=8),
        st.lists(st.floats(-5, 5), min_size=1, max_size=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_add_commutes(self, xs, ys):
        n = min(len(xs), len(ys))
        a = Tensor(np.array(xs[:n]))
        b = Tensor(np.array(ys[:n]))
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_relu_idempotent(self, xs):
        x = Tensor(np.array(xs))
        once = x.relu().data
        twice = x.relu().relu().data
        np.testing.assert_allclose(once, twice)

    @given(st.lists(st.floats(-3, 3), min_size=2, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_mean_between_min_and_max(self, xs):
        arr = np.array(xs)
        m = Tensor(arr).mean().item()
        assert arr.min() - 1e-9 <= m <= arr.max() + 1e-9

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_matmul_shape(self, n, k, m):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(n, k)))
        b = Tensor(rng.normal(size=(k, m)))
        assert (a @ b).shape == (n, m)


class TestStackMean:
    def test_mean_of_tensors(self):
        from repro.nn import stack_mean

        tensors = [Tensor(np.full(3, float(i)), requires_grad=True) for i in range(4)]
        out = stack_mean(tensors)
        np.testing.assert_allclose(out.data, np.full(3, 1.5))
        out.sum().backward()
        for t in tensors:
            np.testing.assert_allclose(t.grad, np.full(3, 0.25))

    def test_empty_rejected(self):
        from repro.nn import stack_mean

        with pytest.raises(ValueError):
            stack_mean([])

    def test_clip_norm_value(self):
        t = Tensor(np.array([3.0, 4.0]))
        assert t.clip_norm_value() == pytest.approx(5.0)
