"""Cross-module property-based tests: invariants the whole stack obeys."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PerformanceObjective, absolute_reward, relu_reward
from repro.graph import OpGraph, ops, passes
from repro.hardware import (
    GPU_V100,
    TPU_V4,
    TPU_V4I,
    power_report,
    simulate,
)
from repro.models import CnnBaseline, VitBaseline
from repro.models.cnn_timing import build_cnn_graph
from repro.models.vit_timing import build_vit_graph
from repro.searchspace import (
    CnnSpaceConfig,
    DlrmSpaceConfig,
    VitSpaceConfig,
    cnn_search_space,
    dlrm_search_space,
    vit_search_space,
)

PLATFORM_LIST = (TPU_V4, TPU_V4I, GPU_V100)


def random_dense_graph(rng: np.random.Generator) -> OpGraph:
    graph = OpGraph("random")
    last = None
    for i in range(int(rng.integers(1, 6))):
        node = ops.dense(
            f"fc{i}",
            batch=int(rng.integers(1, 64)),
            nin=int(rng.integers(8, 512)),
            nout=int(rng.integers(8, 512)),
        )
        graph.add(node, deps=[last] if last else [])
        last = node.name
    return graph


class TestSimulatorInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_critical_path_never_exceeds_serial_time(self, seed):
        graph = random_dense_graph(np.random.default_rng(seed))
        for hw in PLATFORM_LIST:
            result = simulate(graph, hw)
            assert result.total_time_s <= result.serial_time_s + 1e-12

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_adding_an_op_never_speeds_a_chain_up(self, seed):
        graph = random_dense_graph(np.random.default_rng(seed))
        before = simulate(graph, TPU_V4).total_time_s
        tail = graph.nodes()[-1].name
        graph.add(ops.dense("extra", 8, 64, 64), deps=[tail])
        after = simulate(graph, TPU_V4).total_time_s
        assert after >= before

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_power_always_within_chip_envelope(self, seed):
        graph = random_dense_graph(np.random.default_rng(seed))
        for hw in PLATFORM_LIST:
            report = power_report(simulate(graph, hw), hw)
            assert hw.idle_power_w <= report.power_w <= hw.max_power_w

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_achieved_flops_never_exceed_peak(self, seed):
        graph = random_dense_graph(np.random.default_rng(seed))
        for hw in PLATFORM_LIST:
            result = simulate(graph, hw)
            assert result.achieved_flops <= hw.peak_matrix_flops * (1 + 1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_fusion_preserves_flops_and_never_hurts(self, seed):
        graph = random_dense_graph(np.random.default_rng(seed))
        tail = graph.nodes()[-1].name
        graph.add(
            ops.elementwise("act", 4096, op_type="activation"), deps=[tail]
        )
        optimized = passes.optimize(graph)
        assert optimized.total_flops == pytest.approx(graph.total_flops)
        assert (
            simulate(optimized, TPU_V4).total_time_s
            <= simulate(graph, TPU_V4).total_time_s + 1e-12
        )


class TestLoweringInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_every_cnn_arch_lowers_to_finite_positive_times(self, seed):
        space = cnn_search_space(CnnSpaceConfig(num_blocks=3))
        arch = space.sample(np.random.default_rng(seed))
        graph = build_cnn_graph(CnnBaseline(
            stage_widths=(24, 48, 96), stage_depths=(1, 2, 2)
        ), arch, batch=2)
        for hw in PLATFORM_LIST:
            time = simulate(graph, hw).total_time_s
            assert np.isfinite(time) and time > 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_every_vit_arch_lowers_to_finite_positive_times(self, seed):
        space = vit_search_space(VitSpaceConfig(num_tfm_blocks=2))
        arch = space.sample(np.random.default_rng(seed))
        graph = build_vit_graph(VitBaseline(), arch, batch=2)
        for hw in PLATFORM_LIST:
            time = simulate(graph, hw).total_time_s
            assert np.isfinite(time) and time > 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_faster_hardware_is_never_slower(self, seed):
        """TPUv4 dominates TPUv4i on every axis: so does its timing."""
        space = cnn_search_space(CnnSpaceConfig(num_blocks=2))
        arch = space.sample(np.random.default_rng(seed))
        graph = build_cnn_graph(
            CnnBaseline(stage_widths=(24, 48), stage_depths=(1, 2)), arch, batch=4
        )
        assert (
            simulate(graph, TPU_V4).total_time_s
            <= simulate(graph, TPU_V4I).total_time_s + 1e-12
        )


class TestRewardInvariants:
    @given(
        st.floats(0.0, 1.0),
        st.floats(0.01, 10.0),
        st.floats(0.01, 10.0),
        st.floats(-5.0, -0.01),
    )
    @settings(max_examples=60, deadline=None)
    def test_relu_reward_at_least_absolute(self, quality, value, target, beta):
        objective = PerformanceObjective("metric", target, beta)
        metrics = {"metric": value}
        assert (
            relu_reward([objective])(quality, metrics)
            >= absolute_reward([objective])(quality, metrics) - 1e-12
        )

    @given(
        st.floats(0.0, 1.0),
        st.floats(0.01, 10.0),
        st.floats(0.01, 10.0),
        st.floats(-5.0, -0.01),
    )
    @settings(max_examples=60, deadline=None)
    def test_reward_never_exceeds_quality(self, quality, value, target, beta):
        """Penalties are non-positive: reward <= raw quality."""
        objective = PerformanceObjective("metric", target, beta)
        metrics = {"metric": value}
        for factory in (relu_reward, absolute_reward):
            assert factory([objective])(quality, metrics) <= quality + 1e-12

    @given(st.floats(0.0, 1.0), st.floats(0.01, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_relu_reward_monotone_in_metric(self, quality, target):
        """Slower candidates never score higher under the ReLU reward."""
        reward = relu_reward([PerformanceObjective("metric", target, -1.0)])
        values = sorted([target * f for f in (0.5, 0.9, 1.0, 1.3, 2.0)])
        scores = [reward(quality, {"metric": v}) for v in values]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))


class TestSpaceInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_indices_roundtrip_everywhere(self, seed):
        rng = np.random.default_rng(seed)
        for space in (
            cnn_search_space(CnnSpaceConfig(num_blocks=2)),
            dlrm_search_space(DlrmSpaceConfig(num_tables=2, num_dense_stacks=2)),
            vit_search_space(VitSpaceConfig(num_tfm_blocks=1)),
        ):
            arch = space.sample(rng)
            assert space.architecture_from_indices(space.indices_of(arch)) == arch

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_default_architecture_always_valid(self, seed):
        for space in (
            cnn_search_space(CnnSpaceConfig(num_blocks=(seed % 3) + 1)),
            dlrm_search_space(
                DlrmSpaceConfig(num_tables=(seed % 4) + 1, num_dense_stacks=2)
            ),
        ):
            space.validate(space.default_architecture())
