"""Tests for the two-phase hybrid performance model (Section 6.2)."""

import numpy as np
import pytest

from repro.models import baseline_production_dlrm
from repro.models.timing import DlrmTimingHarness
from repro.perfmodel import (
    ArchitectureEncoder,
    PerformanceModel,
    TwoPhaseConfig,
    TwoPhaseTrainer,
    mean_relative_error,
    nrmse,
    rmse,
)
from repro.searchspace import Decision, DlrmSpaceConfig, SearchSpace, dlrm_search_space


def small_setup(num_tables=3, seed=0):
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=num_tables, num_dense_stacks=2))
    base = baseline_production_dlrm(num_tables=num_tables)
    harness = DlrmTimingHarness(base, seed=seed)
    encoder = ArchitectureEncoder(space)
    model = PerformanceModel(
        encoder, hidden_sizes=(64, 64), size_fn=harness.model_size, seed=seed
    )
    return space, harness, model


class TestMetrics:
    def test_rmse_known(self):
        assert rmse(np.array([1.0, 3.0]), np.array([2.0, 2.0])) == pytest.approx(1.0)

    def test_nrmse_normalizes(self):
        a = nrmse(np.array([1.1]), np.array([1.0]))
        b = nrmse(np.array([1100.0]), np.array([1000.0]))
        assert a == pytest.approx(b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(2), np.zeros(3))

    def test_nrmse_zero_targets(self):
        with pytest.raises(ValueError):
            nrmse(np.array([1.0]), np.array([0.0]))

    def test_mean_relative_error(self):
        assert mean_relative_error(np.array([1.1, 0.9]), np.array([1.0, 1.0])) == pytest.approx(0.1)


class TestArchitectureEncoder:
    def test_feature_count(self):
        space = SearchSpace(
            "s", [Decision("a", (0, 1, 2)), Decision("b", ("x", "y"))]
        )
        enc = ArchitectureEncoder(space)
        # a: 3 one-hot + 1 numeric, b: 2 one-hot.
        assert enc.num_features == 6

    def test_encoding_is_onehot_plus_numeric(self):
        space = SearchSpace("s", [Decision("a", (0, 2, 4))])
        enc = ArchitectureEncoder(space)
        vec = enc.encode(space.architecture_from_indices([1]))
        np.testing.assert_allclose(vec, [0, 1, 0, 0.5])

    def test_distinct_archs_distinct_encodings(self):
        space, _, _ = small_setup()
        enc = ArchitectureEncoder(space)
        rng = np.random.default_rng(0)
        archs = [space.sample(rng) for _ in range(20)]
        encodings = enc.encode_batch(archs)
        assert encodings.shape == (20, enc.num_features)
        unique = {tuple(row) for row in encodings}
        assert len(unique) > 15  # collisions only if archs collide

    def test_batch_matches_single(self):
        space, _, _ = small_setup()
        enc = ArchitectureEncoder(space)
        arch = space.default_architecture()
        np.testing.assert_allclose(enc.encode_batch([arch])[0], enc.encode(arch))


class TestPerformanceModel:
    def test_predict_returns_all_metrics(self):
        space, harness, model = small_setup()
        metrics = model.predict(space.default_architecture())
        assert set(metrics) == {"train_step_time", "serving_latency", "model_size"}
        assert metrics["train_step_time"] > 0

    def test_size_head_is_analytical(self):
        """The model-size output needs no learning: it is exact."""
        space, harness, model = small_setup()
        arch = space.default_architecture()
        assert model.predict(arch)["model_size"] == harness.model_size(arch)

    def test_no_size_fn(self):
        space, harness, _ = small_setup()
        model = PerformanceModel(ArchitectureEncoder(space), hidden_sizes=(16,))
        assert "model_size" not in model.predict(space.default_architecture())

    def test_normalization_roundtrip(self):
        space, _, model = small_setup()
        model.set_normalization(np.array([-5.0, -6.0]), np.array([0.5, 0.7]))
        logs = np.array([[-5.5, -5.3]])
        np.testing.assert_allclose(
            model.normalize_targets(logs) * model.log_std + model.log_mean, logs
        )

    def test_degenerate_std_guarded(self):
        space, _, model = small_setup()
        model.set_normalization(np.zeros(2), np.zeros(2))
        assert np.all(model.log_std > 0)


class TestTwoPhaseTrainer:
    def test_pretraining_fits_simulator(self):
        space, harness, model = small_setup()
        trainer = TwoPhaseTrainer(
            model,
            space,
            simulate_fn=harness.simulate,
            measure_fn=harness.measure,
            config=TwoPhaseConfig(pretrain_epochs=40),
            seed=0,
        )
        report = trainer.pretrain(800)
        assert report.num_samples == 800
        assert report.nrmse_train_head < 0.08
        assert report.nrmse_serve_head < 0.08

    def test_finetuning_closes_hardware_gap(self):
        """The Table 1 effect: big NRMSE drop from ~20 measurements."""
        space, harness, model = small_setup(seed=1)
        trainer = TwoPhaseTrainer(
            model,
            space,
            simulate_fn=harness.simulate,
            measure_fn=harness.measure,
            config=TwoPhaseConfig(
                pretrain_epochs=40, finetune_epochs=100, finetune_lr=5e-5
            ),
            seed=1,
        )
        trainer.pretrain(800)
        before = trainer.evaluate(100, harness.measure_deterministic)
        trainer.finetune(20)
        after = trainer.evaluate(100, harness.measure_deterministic)
        assert after[0] < before[0] / 2
        # The test-scale model (tiny MLP, 800 samples) retains more
        # generalization error than the bench-scale run, which lands at
        # the paper's 1-3%; see benchmarks/bench_table1_perfmodel.py.
        assert after[0] < 0.12

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TwoPhaseConfig(pretrain_epochs=0)
        with pytest.raises(ValueError):
            TwoPhaseConfig(finetune_lr=0.0)

    def test_sample_dataset_shapes(self):
        space, harness, model = small_setup()
        trainer = TwoPhaseTrainer(
            model, space, harness.simulate, harness.measure, seed=0
        )
        archs, times = trainer.sample_dataset(5, harness.simulate)
        assert len(archs) == 5
        assert times.shape == (5, 2)
        assert np.all(times > 0)
