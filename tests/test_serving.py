"""Tests for serving-throughput optimization under a P99 latency target."""

import numpy as np
import pytest

from repro.graph import OpGraph, ops
from repro.hardware import (
    HardwareTestbed,
    TPU_V4I,
    measure_serving_point,
    optimize_serving_throughput,
)


def build_graph(batch: int) -> OpGraph:
    """A compute-dominated serving graph: latency scales with batch."""
    graph = OpGraph(f"serve_b{batch}")
    graph.chain(
        [
            ops.matmul(f"mm{i}", m=batch * 256, k=1024, n=1024)
            for i in range(4)
        ]
    )
    return graph


def make_testbed(seed=0):
    return HardwareTestbed(TPU_V4I, seed=seed)


class TestServingPoint:
    def test_p99_above_p50(self):
        point = measure_serving_point(make_testbed(), build_graph, batch_size=8)
        assert point.p99_latency_s > point.p50_latency_s > 0

    def test_throughput_definition(self):
        point = measure_serving_point(make_testbed(), build_graph, batch_size=8)
        assert point.throughput == pytest.approx(8 / point.p50_latency_s)

    def test_latency_grows_with_batch(self):
        small = measure_serving_point(make_testbed(1), build_graph, 4)
        large = measure_serving_point(make_testbed(1), build_graph, 64)
        assert large.p99_latency_s > small.p99_latency_s

    def test_throughput_grows_with_batch(self):
        """Batching amortizes fixed costs: bigger batch, more QPS."""
        small = measure_serving_point(make_testbed(2), build_graph, 1)
        large = measure_serving_point(make_testbed(2), build_graph, 64)
        assert large.throughput > small.throughput

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_serving_point(make_testbed(), build_graph, batch_size=0)
        with pytest.raises(ValueError):
            measure_serving_point(make_testbed(), build_graph, 1, num_measurements=1)


class TestOptimizeServingThroughput:
    def test_loose_target_picks_large_batch(self):
        report = optimize_serving_throughput(
            make_testbed(3), build_graph, target_latency_s=1.0,
            batch_candidates=(1, 8, 64), num_measurements=20,
        )
        assert report.feasible
        assert report.best.batch_size == 64

    def test_tight_target_limits_batch(self):
        loose = optimize_serving_throughput(
            make_testbed(4), build_graph, 1.0, batch_candidates=(1, 8, 64),
            num_measurements=20,
        )
        # A target just above the single-example latency forces batch 1.
        single = measure_serving_point(make_testbed(4), build_graph, 1, 20)
        tight = optimize_serving_throughput(
            make_testbed(4), build_graph, single.p99_latency_s * 1.05,
            batch_candidates=(1, 8, 64), num_measurements=20,
        )
        assert tight.feasible
        assert tight.best.batch_size < loose.best.batch_size
        assert tight.throughput_under_target < loose.throughput_under_target

    def test_infeasible_target(self):
        report = optimize_serving_throughput(
            make_testbed(5), build_graph, target_latency_s=1e-9,
            batch_candidates=(1, 2), num_measurements=10,
        )
        assert not report.feasible
        assert report.throughput_under_target == 0.0

    def test_sweep_stops_at_first_infeasible(self):
        single = measure_serving_point(make_testbed(6), build_graph, 1, 20)
        report = optimize_serving_throughput(
            make_testbed(6), build_graph, single.p99_latency_s * 1.05,
            batch_candidates=(1, 8, 64, 256), num_measurements=10,
        )
        # 8 breaks the target, so 64/256 are never probed.
        assert len(report.points) <= 3

    def test_target_validation(self):
        with pytest.raises(ValueError):
            optimize_serving_throughput(make_testbed(), build_graph, target_latency_s=0.0)
