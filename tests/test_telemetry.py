"""Tests for the telemetry subsystem and the retry-classification fixes."""

import json

import pytest

from repro.core import SearchConfig
from repro.core.eval_runtime import STAGES, EvalRuntime
from repro.runtime import CheckpointStore, RestartBudgetExceeded, SearchSupervisor, SupervisorConfig
from repro.runtime.errors import classify_error, is_retryable
from repro.runtime.faults import InjectedCrash
from repro.telemetry import (
    CHURN_PREFIXES,
    EventLog,
    MetricsRegistry,
    Telemetry,
    read_events,
)
from repro.telemetry.report import render_report, summarize_events


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("search.steps")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        assert registry.counter("search.steps") is counter

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter("c").inc(-1)

    def test_labeled_series_are_independent(self):
        counter = MetricsRegistry().counter("supervisor.crashes")
        counter.inc(error="TypeError", retryable="false")
        counter.inc(error="RuntimeError", retryable="true")
        counter.inc(error="RuntimeError", retryable="true")
        assert counter.value(error="TypeError", retryable="false") == 1
        assert counter.value(error="RuntimeError", retryable="true") == 2
        assert counter.total() == 3

    def test_gauge_keeps_last_value(self):
        gauge = MetricsRegistry().gauge("search.reward")
        assert gauge.value() is None
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.value() == 0.75

    def test_histogram_streams_stats(self):
        hist = MetricsRegistry().histogram("span.step")
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        stats = hist.stats()
        assert stats["count"] == 3
        assert stats["total"] == pytest.approx(6.0)
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert stats["mean"] == pytest.approx(2.0)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a counter, not a gauge"):
            registry.gauge("x")

    def test_export_import_roundtrip_excludes_churn(self):
        registry = MetricsRegistry()
        registry.counter("search.steps").inc(7)
        registry.gauge("search.reward").set(0.5)
        registry.histogram("span.step").observe(0.01)
        registry.counter("supervisor.crashes").inc(error="RuntimeError")
        state = registry.export_state(exclude_prefixes=CHURN_PREFIXES)
        assert {m["name"] for m in state["metrics"]} == {
            "search.steps",
            "search.reward",
            "span.step",
        }
        # JSON-safe: the state must survive a serialization round trip.
        state = json.loads(json.dumps(state))

        target = MetricsRegistry()
        target.counter("search.steps").inc(99)  # stale run count: replaced
        target.counter("supervisor.crashes").inc(3)  # churn: survives
        target.import_state(state, exclude_prefixes=CHURN_PREFIXES)
        assert target.counter("search.steps").value() == 7
        assert target.gauge("search.reward").value() == 0.5
        assert target.histogram("span.step").stats()["count"] == 1
        assert target.counter("supervisor.crashes").total() == 3

    def test_reset_spares_churn(self):
        registry = MetricsRegistry()
        registry.counter("search.steps").inc()
        registry.counter("testbed.retries").inc()
        registry.reset(exclude_prefixes=CHURN_PREFIXES)
        assert "search.steps" not in registry
        assert registry.counter("testbed.retries").value() == 1


class TestEventLog:
    def test_events_seal_into_segments(self, tmp_path):
        log = EventLog(tmp_path, segment_events=2, clock=lambda: 1.0)
        log.emit("a", x=1)
        assert log.pending == 1 and log.segments_written == 0
        log.emit("b")  # fills the segment
        assert log.pending == 0 and log.segments_written == 1
        log.emit("c")
        log.close()
        events = list(read_events(tmp_path))
        assert [e["kind"] for e in events] == ["a", "b", "c"]
        assert events[0] == {"ts": 1.0, "kind": "a", "x": 1}

    def test_numbering_resumes_after_restart(self, tmp_path):
        first = EventLog(tmp_path, segment_events=1)
        first.emit("a")
        # A second process (restart) must not overwrite segment 0.
        second = EventLog(tmp_path, segment_events=1)
        second.emit("b")
        assert [e["kind"] for e in read_events(tmp_path)] == ["a", "b"]

    def test_unflushed_events_never_hit_disk(self, tmp_path):
        log = EventLog(tmp_path, segment_events=100)
        log.emit("buffered")
        assert list(tmp_path.glob("events-*.jsonl")) == []


class TestTelemetryFacade:
    def test_in_memory_events_are_noops(self):
        telemetry = Telemetry()
        telemetry.event("search.step", step=0)  # no directory: dropped
        telemetry.flush()
        assert telemetry.events is None

    def test_span_times_into_histogram(self):
        telemetry = Telemetry()
        with telemetry.span("step"):
            pass
        assert telemetry.trace.span_stats("step")["count"] == 1

    def test_summary_written_on_close(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        telemetry.counter("search.steps").inc(3)
        telemetry.event("search.step", step=0, reward=0.5)
        telemetry.close()
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["counters"]["search.steps"][""] == 3
        assert [e["kind"] for e in read_events(tmp_path / "events")] == ["search.step"]

    def test_export_state_excludes_churn(self):
        telemetry = Telemetry()
        telemetry.counter("search.steps").inc()
        telemetry.counter("checkpoint.saves").inc()
        names = {m["name"] for m in telemetry.export_state()["metrics"]}
        assert names == {"search.steps"}


class TestReport:
    def test_render_full_report(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        telemetry.counter("search.steps").inc(2)
        telemetry.gauge("search.reward").set(0.5)
        with telemetry.span("step"):
            pass
        telemetry.event("search.step", step=0, reward=0.4, quality=0.5, entropy=2.0)
        telemetry.event("search.step", step=1, reward=0.5, quality=0.6, entropy=1.9)
        telemetry.close()
        report = render_report(tmp_path)
        assert "search.steps" in report and "search.reward" in report
        assert "span.step" in report
        assert "steps: 2 unique, 0 replayed" in report
        assert "last step: step=1" in report

    def test_render_handles_missing_artifacts(self, tmp_path):
        report = render_report(tmp_path)
        assert "no summary.json" in report and "no event log" in report

    def test_summarize_counts_replays(self):
        events = [
            {"ts": 0.0, "kind": "search.step", "step": 0},
            {"ts": 1.0, "kind": "search.step", "step": 1},
            {"ts": 2.0, "kind": "supervisor.restart", "attempt": 1},
            {"ts": 3.0, "kind": "search.step", "step": 1},
        ]
        facts = summarize_events(events)
        assert facts["steps_seen"] == 3
        assert facts["unique_steps"] == 2
        assert facts["replayed_steps"] == 1


class TestTimedStageValidation:
    def test_unknown_stage_rejected(self):
        runtime = EvalRuntime(lambda arch: {"t": 1.0})
        with pytest.raises(ValueError, match="unknown stage 'scoring'"):
            with runtime.timed("scoring"):
                pass

    def test_canonical_stages_accepted_and_forwarded(self):
        telemetry = Telemetry()
        runtime = EvalRuntime(lambda arch: {"t": 1.0}, telemetry=telemetry)
        for stage in STAGES:
            with runtime.timed(stage):
                pass
        stats = runtime.stats()
        assert stats.unknown_stages == ()
        for stage in STAGES:
            assert stats.stage_calls[stage] == 1
            assert telemetry.trace.span_stats(stage)["count"] == 1

    def test_summary_flags_legacy_unknown_buckets(self):
        runtime = EvalRuntime(lambda arch: {"t": 1.0})
        state = runtime.export_state()
        # A checkpoint written before stage validation existed.
        state["stage_seconds"] = {"price": 0.5, "scoring": 0.25}
        state["stage_calls"] = {"price": 5, "scoring": 2}
        runtime.import_state(state)
        stats = runtime.stats()
        assert stats.unknown_stages == ("scoring",)
        assert "!scoring=250.0ms" in stats.summary()
        assert "price=500.0ms" in stats.summary()


class TestEvalRuntimeTelemetry:
    def test_price_mirrors_cache_counters(self):
        telemetry = Telemetry()
        runtime = EvalRuntime(
            lambda arch: {"t": float(arch["v"])}, telemetry=telemetry, cache_capacity=8
        )
        runtime.price({"v": 1}, indices=(1,))
        runtime.price({"v": 1}, indices=(1,))
        assert telemetry.counter("eval.candidates_priced").value() == 2
        assert telemetry.counter("eval.cache.hits").value() == 1
        assert telemetry.counter("eval.cache.misses").value() == 1
        assert telemetry.counter("eval.evaluations").value() == 1
        assert telemetry.gauge("eval.cache.entries").value() == 1

    def test_price_many_mirrors_in_one_delta(self):
        telemetry = Telemetry()
        runtime = EvalRuntime(
            lambda arch: {"t": float(arch["v"])}, telemetry=telemetry, cache_capacity=8
        )
        drawn = [({"v": i}, (i,)) for i in (0, 1, 0)]
        runtime.price_many(drawn)
        assert telemetry.counter("eval.candidates_priced").value() == 3
        assert telemetry.counter("eval.cache.hits").value() == 1
        assert telemetry.counter("eval.cache.misses").value() == 2


class TestErrorClassification:
    @pytest.mark.parametrize(
        "error", [TypeError("t"), KeyError("k"), ValueError("v"), AttributeError("a")]
    )
    def test_programming_errors_not_retryable(self, error):
        assert not is_retryable(error)
        assert classify_error(error) == "non_retryable"

    @pytest.mark.parametrize(
        "error", [RuntimeError("preempted"), OSError("disk"), MemoryError()]
    )
    def test_environment_errors_retryable(self, error):
        assert is_retryable(error)
        assert classify_error(error) == "retryable"

    def test_injected_faults_always_retryable(self):
        assert is_retryable(InjectedCrash("injected crash"))


class _BuggySearch:
    """A search whose step has a deterministic programming bug."""

    config = SearchConfig(steps=4, num_cores=1)
    telemetry = None

    def __init__(self, telemetry=None):
        self.telemetry = telemetry

    def step(self, step):
        raise TypeError("bad config: expected int, got str")

    def state_dict(self):
        return {}


class TestSupervisorClassification:
    def test_non_retryable_crash_raises_immediately(self, tmp_path):
        telemetry = Telemetry()
        supervisor = SearchSupervisor(
            lambda: _BuggySearch(telemetry),
            CheckpointStore(tmp_path),
            SupervisorConfig(max_restarts=5, backoff_base_s=0.0),
            sleep_fn=lambda s: None,
        )
        # The original TypeError surfaces, not RestartBudgetExceeded.
        with pytest.raises(TypeError, match="bad config"):
            supervisor.run()
        assert telemetry.counter("supervisor.crashes").value(
            error="TypeError", retryable="false"
        ) == 1
        # No restart was attempted, so no restart counter ticked.
        assert telemetry.counter("supervisor.restarts").total() == 0

    def test_retryable_crashes_still_burn_the_budget(self, tmp_path):
        class DoomedSearch:
            config = SearchConfig(steps=4, num_cores=1)
            telemetry = None

            def step(self, step):
                raise RuntimeError("preempted")

            def state_dict(self):
                return {}

        supervisor = SearchSupervisor(
            DoomedSearch,
            CheckpointStore(tmp_path),
            SupervisorConfig(max_restarts=2, backoff_base_s=0.0),
            sleep_fn=lambda s: None,
        )
        with pytest.raises(RestartBudgetExceeded):
            supervisor.run()


class TestTestbedClassification:
    def _bed(self, telemetry=None, max_attempts=3):
        from repro.hardware import TPU_V4, HardwareTestbed, MeasurementPolicy

        return HardwareTestbed(
            TPU_V4,
            seed=0,
            policy=MeasurementPolicy(max_attempts=max_attempts),
            sleep_fn=lambda s: None,
            telemetry=telemetry,
        )

    def _graph(self):
        from repro.graph import OpGraph, ops

        graph = OpGraph("tiny")
        graph.chain([ops.matmul("mm", m=64, k=64, n=64)])
        return graph

    def test_non_retryable_attempt_raises_immediately(self):
        telemetry = Telemetry()
        bed = self._bed(telemetry)
        calls = {"n": 0}

        def broken(graph):
            calls["n"] += 1
            raise TypeError("batch size must be int")

        bed.measure_time = broken
        with pytest.raises(TypeError, match="must be int"):
            bed.measure(self._graph())
        assert calls["n"] == 1  # no blind retries of a deterministic bug
        assert telemetry.counter("testbed.failures").value(
            error="TypeError", retryable="false"
        ) == 1

    def test_retryable_failures_counted(self):
        telemetry = Telemetry()
        bed = self._bed(telemetry, max_attempts=4)
        real = bed.measure_time
        failures = {"left": 2}

        def flaky(graph):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("preempted")
            return real(graph)

        bed.measure_time = flaky
        measurement = bed.measure(self._graph())
        assert measurement.retries == 2
        assert telemetry.counter("testbed.retries").value() == 2
        assert telemetry.counter("testbed.failures").value(
            error="RuntimeError", retryable="true"
        ) == 2
        assert telemetry.counter("testbed.measurements").value() == 1


class TestEventLogConcurrency:
    """Concurrent per-job streams: the daemon's telemetry layout.

    The service runs N jobs at once, each writing its own EventLog
    under ``runs/<job>/telemetry/events``, while operators tail live
    streams.  Two writer threads on distinct streams plus a reader
    tailing one of them mid-write must never observe a torn or
    interleaved JSONL record — segments are sealed atomically, so a
    reader only ever sees whole segments of whole lines.
    """

    WRITES = 120

    def test_two_writers_and_a_live_reader_see_whole_records(self, tmp_path):
        import threading

        dirs = [tmp_path / "job-a", tmp_path / "job-b"]
        logs = [EventLog(d, segment_events=4) for d in dirs]
        start = threading.Barrier(3)
        errors = []

        def writer(index):
            log = logs[index]
            start.wait()
            for i in range(self.WRITES):
                log.emit("step", writer=index, i=i, payload="x" * 200)
            log.close()

        def reader():
            # Tails writer 0's stream while segments are landing; every
            # observed record must already be complete and parseable
            # (read_events would raise on a torn line).
            start.wait()
            try:
                while len(list(dirs[0].glob("events-*.jsonl"))) * 4 < self.WRITES:
                    for event in read_events(dirs[0]):
                        assert event["kind"] == "step"
                        assert set(event) == {"ts", "kind", "writer", "i", "payload"}
                        assert event["writer"] == 0
            except Exception as error:  # surfaced after join
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(0,)),
            threading.Thread(target=writer, args=(1,)),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        # Final state: each stream holds exactly its own writer's
        # records, in order, with no cross-stream interleaving.
        for index, d in enumerate(dirs):
            events = list(read_events(d))
            assert [e["i"] for e in events] == list(range(self.WRITES))
            assert {e["writer"] for e in events} == {index}
