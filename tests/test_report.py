"""Tests for search reporting, the surrogate adapter, and production fleet."""

import numpy as np
import pytest

from repro.analysis import (
    decision_drift,
    format_report,
    summarize,
    top_candidates,
)
from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    relu_reward,
)
from repro.core.search import CandidateRecord, SearchResult, StepRecord
from repro.data import NullSource, SingleStepPipeline
from repro.models.production import (
    apply_cv_architecture,
    cv_production_fleet,
    cv_search_space,
    dlrm_production_fleet,
)
from repro.searchspace import Decision, SearchSpace


def tiny_space():
    return SearchSpace("tiny", [Decision("a", (0, 1, 2)), Decision("b", ("x", "y"))])


def run_tiny_search(steps=30):
    space = tiny_space()

    def quality_fn(arch):
        return float(arch["a"]) + (0.5 if arch["b"] == "y" else 0.0)

    search = SingleStepSearch(
        space=space,
        supernet=SurrogateSuperNetwork(quality_fn, seed=0),
        pipeline=SingleStepPipeline(NullSource().next_batch),
        reward_fn=relu_reward([]),
        performance_fn=lambda arch: {},
        config=SearchConfig(steps=steps, num_cores=4, warmup_steps=3, policy_lr=0.4, seed=0),
    )
    return space, search.run()


class TestSummarize:
    def test_summary_fields(self):
        space, result = run_tiny_search()
        summary = summarize(result)
        assert summary.steps == 30
        assert summary.batches_used == 120
        assert summary.final_reward > summary.initial_reward
        assert summary.final_entropy < summary.initial_entropy
        assert summary.converged

    def test_entropy_reduction_fraction(self):
        space, result = run_tiny_search()
        summary = summarize(result)
        assert 0.0 < summary.entropy_reduction <= 1.0

    def test_empty_history_rejected(self):
        empty = SearchResult(
            final_architecture=tiny_space().default_architecture(),
            history=[],
            batches_used=0,
        )
        with pytest.raises(ValueError):
            summarize(empty)

    def test_window_clamped(self):
        space, result = run_tiny_search(steps=3)
        summary = summarize(result, window=100)
        assert summary.steps == 3


class TestTopCandidates:
    def test_sorted_by_reward(self):
        space, result = run_tiny_search()
        top = top_candidates(result, k=5)
        rewards = [c.reward for c in top]
        assert rewards == sorted(rewards, reverse=True)

    def test_k_validation(self):
        space, result = run_tiny_search()
        with pytest.raises(ValueError):
            top_candidates(result, k=0)

    def test_best_candidate_is_optimum(self):
        space, result = run_tiny_search()
        best = top_candidates(result, k=1)[0]
        assert best.architecture["a"] == 2 and best.architecture["b"] == "y"


class TestDecisionDrift:
    def test_no_drift_for_baseline(self):
        space = tiny_space()
        assert decision_drift(space, space.default_architecture()) == {}

    def test_drift_reported(self):
        space = tiny_space()
        searched = space.default_architecture().replaced(a=2)
        drift = decision_drift(space, searched)
        assert drift == {"a": (0, 2)}

    def test_custom_baseline(self):
        space = tiny_space()
        baseline = space.default_architecture().replaced(a=1)
        drift = decision_drift(space, space.default_architecture(), baseline)
        assert drift == {"a": (1, 0)}


class TestFormatReport:
    def test_contains_headline_numbers(self):
        space, result = run_tiny_search()
        text = format_report(space, result)
        assert "reward:" in text and "entropy:" in text
        assert "searched decisions" in text

    def test_baseline_result_message(self):
        space = tiny_space()
        record = StepRecord(0, 1.0, 1.0, 0.5, [])
        result = SearchResult(space.default_architecture(), [record], 4)
        assert "equals the baseline" in format_report(space, result)


class TestSurrogateSuperNetwork:
    def test_quality_passthrough(self):
        net = SurrogateSuperNetwork(lambda arch: 0.75)
        assert net.quality(None, None, None) == 0.75

    def test_noise_applied(self):
        net = SurrogateSuperNetwork(lambda arch: 0.5, noise_sigma=0.1, seed=0)
        values = {net.quality(None, None, None) for _ in range(10)}
        assert len(values) > 1

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            SurrogateSuperNetwork(lambda arch: 0.5, noise_sigma=-0.1)

    def test_loss_is_backpropagatable_zero(self):
        net = SurrogateSuperNetwork(lambda arch: 0.5)
        loss = net.loss(None, None, None)
        loss.backward()
        assert loss.item() == 0.0
        assert len(net.parameters()) == 1


class TestProductionFleet:
    def test_cv_fleet_members(self):
        fleet = cv_production_fleet()
        assert set(fleet) == {f"CV{i}" for i in range(1, 6)}
        for config in fleet.values():
            assert config.resolution == 288
            assert config.activation == "relu"

    def test_dlrm_fleet_members(self):
        fleet = dlrm_production_fleet()
        assert set(fleet) == {f"DLRM{i}" for i in range(1, 6)}
        shapes = {
            (len(s.tables), s.bottom.width, s.top.width, s.lookups_per_table)
            for s in fleet.values()
        }
        assert len(shapes) == 5  # all distinct

    def test_cv_space_and_apply(self):
        space = cv_search_space()
        baseline = cv_production_fleet()["CV1"]
        arch = space.default_architecture().replaced(
            resolution=160, conv_depth_delta=4, activation="squared_relu"
        )
        searched = apply_cv_architecture(baseline, arch)
        assert searched.resolution == 160
        assert searched.conv_layers == baseline.conv_layers + 4
        assert searched.activation == "squared_relu"

    def test_apply_clamps_depths(self):
        space = cv_search_space()
        baseline = cv_production_fleet()["CV1"]
        arch = space.default_architecture().replaced(
            conv_depth_delta=-2, tfm_depth_delta=-2
        )
        searched = apply_cv_architecture(baseline, arch)
        assert searched.conv_depths[1] >= 1
        assert searched.tfm_depths[0] >= 1

    def test_all_cv_space_archs_applicable(self):
        space = cv_search_space()
        baseline = cv_production_fleet()["CV3"]
        rng = np.random.default_rng(0)
        for _ in range(20):
            config = apply_cv_architecture(baseline, space.sample(rng))
            assert config.resolution in (224, 160, 192, 256, 288)
