"""Scheduler tests: admission control, quotas, concurrency, cancel, drain.

A stub runner stands in for real searches so these tests exercise only
the scheduling layer (fast, deterministic); the end-to-end path with
real searches is covered in ``test_service_daemon.py``.
"""

import threading
import time

import pytest

from repro.runtime.errors import SearchInterrupted
from repro.service.protocol import (
    AdmissionClosedError,
    JobSpecError,
    JobStateError,
    QuotaExceededError,
)
from repro.service.queue import JobQueue
from repro.service.scheduler import JobScheduler, SchedulerConfig


def wait_until(predicate, timeout=10.0, poll_s=0.005):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(poll_s)


class StubRunner:
    """Runner double: blocks each job until the test releases it."""

    def __init__(self, fail_jobs=()):
        self.fail_jobs = set(fail_jobs)
        self.release = threading.Event()
        self.started = []
        self._lock = threading.Lock()

    def __call__(self, record, run_dir, should_stop, on_step, backend=None, workers=None):
        with self._lock:
            self.started.append(record.job_id)
        if record.job_id in self.fail_jobs:
            raise RuntimeError("injected job failure")
        step = 0
        while not self.release.is_set():
            if should_stop():
                raise SearchInterrupted(step=step, checkpoint_written=True)
            time.sleep(0.002)
        on_step(record.spec.get("steps", 1) - 1)
        return {"ok": True}


def make_scheduler(tmp_path, runner, **overrides):
    config = SchedulerConfig(poll_interval_s=0.005, **overrides)
    queue = JobQueue(tmp_path / "spool")
    scheduler = JobScheduler(queue, config, runner=runner)
    return queue, scheduler


class TestAdmission:
    def test_invalid_spec_rejected_before_spool(self, tmp_path):
        queue, scheduler = make_scheduler(tmp_path, StubRunner())
        with pytest.raises(JobSpecError, match="unknown"):
            scheduler.submit("alice", {"bogus_field": 1})
        with pytest.raises(JobSpecError, match="steps"):
            scheduler.submit("alice", {"steps": 0})
        assert queue.list() == []

    def test_global_queue_depth_enforced(self, tmp_path):
        _, scheduler = make_scheduler(tmp_path, StubRunner(), max_queue_depth=2)
        scheduler.submit("a", {})
        scheduler.submit("b", {})
        with pytest.raises(QuotaExceededError, match="global queue is full"):
            scheduler.submit("c", {})

    def test_tenant_queued_quota_enforced(self, tmp_path):
        _, scheduler = make_scheduler(tmp_path, StubRunner(), tenant_max_queued=2)
        scheduler.submit("alice", {})
        scheduler.submit("alice", {})
        with pytest.raises(QuotaExceededError, match="'alice'"):
            scheduler.submit("alice", {})
        # Another tenant is unaffected by alice's quota.
        assert scheduler.submit("bob", {}).tenant == "bob"

    def test_draining_scheduler_closes_admission(self, tmp_path):
        _, scheduler = make_scheduler(tmp_path, StubRunner())
        scheduler.start()
        scheduler.drain()
        with pytest.raises(AdmissionClosedError):
            scheduler.submit("alice", {})


class TestDispatch:
    def test_concurrency_cap_respected(self, tmp_path):
        runner = StubRunner()
        queue, scheduler = make_scheduler(tmp_path, runner, max_concurrent=2)
        scheduler.start()
        try:
            for _ in range(4):
                scheduler.submit("alice", {}, )
            wait_until(lambda: len(scheduler.running_jobs()) == 2)
            time.sleep(0.05)  # give the dispatcher a chance to overshoot
            assert len(scheduler.running_jobs()) == 2
            assert queue.counts()["queued"] == 2
            runner.release.set()
            wait_until(lambda: queue.counts()["done"] == 4)
            # FIFO: jobs started in submission order.
            assert runner.started == sorted(runner.started)
        finally:
            runner.release.set()
            scheduler.drain()

    def test_tenant_running_quota_admits_other_tenants(self, tmp_path):
        runner = StubRunner()
        queue, scheduler = make_scheduler(
            tmp_path, runner, max_concurrent=4, tenant_max_running=1
        )
        scheduler.start()
        try:
            scheduler.submit("alice", {})
            scheduler.submit("alice", {})  # held back by tenant quota
            scheduler.submit("bob", {})
            wait_until(lambda: len(scheduler.running_jobs()) == 2)
            states = {r.job_id: r.state for r in queue.list()}
            assert states["job-000000"] == "running"
            assert states["job-000001"] == "queued"  # alice at quota
            assert states["job-000002"] == "running"  # bob unaffected
            runner.release.set()
            wait_until(lambda: queue.counts()["done"] == 3)
        finally:
            runner.release.set()
            scheduler.drain()

    def test_failed_job_is_isolated(self, tmp_path):
        runner = StubRunner(fail_jobs={"job-000000"})
        queue, scheduler = make_scheduler(tmp_path, runner)
        scheduler.start()
        try:
            scheduler.submit("alice", {})
            scheduler.submit("alice", {})
            runner.release.set()
            wait_until(
                lambda: queue.counts()["failed"] == 1
                and queue.counts()["done"] == 1
            )
            failed = queue.get("job-000000")
            assert failed.error == "RuntimeError: injected job failure"
            assert queue.get("job-000001").state == "done"
        finally:
            scheduler.drain()


class TestCancelAndDrain:
    def test_cancel_queued_is_immediate(self, tmp_path):
        queue, scheduler = make_scheduler(tmp_path, StubRunner())
        scheduler.submit("alice", {})
        record = scheduler.cancel("job-000000")
        assert record.state == "cancelled"
        assert queue.get("job-000000").state == "cancelled"

    def test_cancel_running_stops_at_step_boundary(self, tmp_path):
        runner = StubRunner()
        queue, scheduler = make_scheduler(tmp_path, runner)
        scheduler.start()
        try:
            scheduler.submit("alice", {})
            wait_until(lambda: scheduler.running_jobs() == ["job-000000"])
            assert scheduler.cancel("job-000000").state == "running"
            wait_until(lambda: queue.get("job-000000").state == "cancelled")
        finally:
            scheduler.drain()

    def test_cancel_terminal_raises(self, tmp_path):
        _, scheduler = make_scheduler(tmp_path, StubRunner())
        scheduler.submit("alice", {})
        scheduler.cancel("job-000000")
        with pytest.raises(JobStateError, match="already cancelled"):
            scheduler.cancel("job-000000")

    def test_drain_requeues_running_jobs(self, tmp_path):
        runner = StubRunner()
        queue, scheduler = make_scheduler(tmp_path, runner)
        scheduler.start()
        scheduler.submit("alice", {})
        wait_until(lambda: scheduler.running_jobs() == ["job-000000"])
        interrupted = scheduler.drain()
        assert interrupted == ["job-000000"]
        # The job is parked, not lost: back to queued for the next daemon.
        assert queue.get("job-000000").state == "queued"
        assert scheduler.drain() == []  # idempotent

    def test_recovery_on_start(self, tmp_path):
        queue = JobQueue(tmp_path / "spool")
        queue.submit("alice", {})
        queue.transition("job-000000", "running")  # a dead daemon's orphan
        runner = StubRunner()
        runner.release.set()
        scheduler = JobScheduler(
            queue, SchedulerConfig(poll_interval_s=0.005), runner=runner
        )
        recovered = scheduler.start()
        try:
            assert [r.job_id for r in recovered] == ["job-000000"]
            wait_until(lambda: queue.get("job-000000").state == "done")
            assert queue.get("job-000000").recoveries == 1
        finally:
            scheduler.drain()
