"""Extra loss-function edge cases."""

import numpy as np
import pytest

from repro.nn import Tensor, accuracy, bce_with_logits, binary_accuracy, mse, softmax_cross_entropy


class TestLossEdges:
    def test_bce_extreme_logits_finite(self):
        logits = Tensor(np.array([[500.0], [-500.0]]))
        loss = bce_with_logits(logits, np.array([[1.0], [0.0]]))
        assert np.isfinite(loss.item())

    def test_softmax_ce_large_logits_stable(self):
        logits = Tensor(np.array([[1000.0, 0.0, -1000.0]]), requires_grad=True)
        loss = softmax_cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_accuracy_perfect_and_zero(self):
        logits = Tensor(np.array([[5.0, 0.0], [0.0, 5.0]]))
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_binary_accuracy_threshold_at_zero(self):
        logits = Tensor(np.array([[0.1], [-0.1]]))
        assert binary_accuracy(logits, np.array([[1.0], [0.0]])) == 1.0

    def test_mse_zero_for_exact(self):
        pred = Tensor(np.array([[1.0], [2.0]]))
        assert mse(pred, np.array([[1.0], [2.0]])).item() == 0.0

    def test_softmax_ce_uniform_is_log_classes(self):
        logits = Tensor(np.zeros((4, 7)))
        loss = softmax_cross_entropy(logits, np.arange(4) % 7)
        assert loss.item() == pytest.approx(np.log(7))
