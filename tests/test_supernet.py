"""Tests for the weight-sharing super-networks (Figure 3 semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CtrTaskConfig, CtrTeacher, VisionTaskConfig, VisionTeacher
from repro.nn import Adam
from repro.searchspace import (
    CnnSpaceConfig,
    DlrmSpaceConfig,
    cnn_search_space,
    dlrm_search_space,
)
from repro.supernet import (
    DlrmSuperNetwork,
    DlrmSupernetConfig,
    VisionSuperNetwork,
    VisionSupernetConfig,
)


def dlrm_setup(num_tables=2):
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=num_tables, num_dense_stacks=2))
    config = DlrmSupernetConfig(num_tables=num_tables)
    net = DlrmSuperNetwork(config)
    teacher = CtrTeacher(CtrTaskConfig(num_tables=num_tables, batch_size=32))
    return space, net, teacher


class TestDlrmSupernet:
    def test_forward_shape(self):
        space, net, teacher = dlrm_setup()
        batch = teacher.next_batch()
        arch = space.default_architecture()
        logits = net(arch, batch.inputs)
        assert logits.shape == (32, 1)

    def test_any_sampled_arch_runs(self):
        space, net, teacher = dlrm_setup()
        rng = np.random.default_rng(0)
        batch = teacher.next_batch()
        for _ in range(10):
            arch = space.sample(rng)
            logits = net(arch, batch.inputs)
            assert np.all(np.isfinite(logits.data))

    def test_embedding_coarse_sharing_distinct_tables_per_vocab(self):
        _, net, _ = dlrm_setup()
        tables = net.embeddings[0]
        ids = {id(tbl.table) for tbl in tables.values()}
        assert len(ids) == len(tables)  # one table per vocab scale

    def test_embedding_fine_sharing_within_table(self):
        """Different widths at the same vocab scale share one table."""
        space, net, teacher = dlrm_setup()
        batch = teacher.next_batch()
        base = space.default_architecture()
        narrow = base.replaced(**{"emb0/width_delta": -2})
        wide = base.replaced(**{"emb0/width_delta": 2})
        before = net.embeddings[0][1.0].table.data.copy()
        for arch in (narrow, wide):
            net(arch, batch.inputs)
        np.testing.assert_allclose(net.embeddings[0][1.0].table.data, before)

    def test_low_rank_uses_separate_factors(self):
        space, net, teacher = dlrm_setup()
        batch = teacher.next_batch()
        base = space.default_architecture()
        lowrank = base.replaced(**{"dense1/low_rank": 0.5})
        full = net(base, batch.inputs)
        factored = net(lowrank, batch.inputs)
        assert not np.allclose(full.data, factored.data)

    def test_gradients_only_touch_active_vocab_table(self):
        space, net, teacher = dlrm_setup()
        batch = teacher.next_batch()
        arch = space.default_architecture()  # vocab scale 1.0
        net.zero_grad()
        net.loss(arch, batch.inputs, batch.labels).backward()
        assert net.embeddings[0][1.0].table.grad is not None
        assert net.embeddings[0][0.5].table.grad is None

    def test_training_reduces_loss(self):
        space, net, teacher = dlrm_setup()
        arch = space.default_architecture()
        opt = Adam(net.parameters(), lr=0.01)
        losses = []
        for _ in range(40):
            batch = teacher.next_batch()
            opt.zero_grad()
            loss = net.loss(arch, batch.inputs, batch.labels)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_quality_in_unit_interval(self):
        space, net, teacher = dlrm_setup()
        batch = teacher.next_batch()
        q = net.quality(space.default_architecture(), batch.inputs, batch.labels)
        assert 0.0 <= q <= 1.0

    def test_parameters_include_all_vocab_tables(self):
        _, net, _ = dlrm_setup(num_tables=2)
        params = net.parameters()
        table_ids = {
            id(tbl.table) for group in net.embeddings for tbl in group.values()
        }
        param_ids = {id(p) for p in params}
        assert table_ids <= param_ids

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DlrmSupernetConfig(base_embedding_width=8)
        with pytest.raises(ValueError):
            DlrmSupernetConfig(base_bottom_width=16)

    def test_depth_clamped_to_valid_range(self):
        space, net, teacher = dlrm_setup()
        batch = teacher.next_batch()
        shallow = space.default_architecture().replaced(**{"dense0/depth_delta": -3})
        logits = net(shallow, batch.inputs)  # base 2 - 3 clamps to 1 layer
        assert np.all(np.isfinite(logits.data))

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_forward_finite_for_random_arch(self, seed):
        space, net, teacher = dlrm_setup()
        batch = teacher.next_batch()
        arch = space.sample(np.random.default_rng(seed))
        assert np.all(np.isfinite(net(arch, batch.inputs).data))


def vision_setup(num_blocks=2):
    space = cnn_search_space(CnnSpaceConfig(num_blocks=num_blocks, include_resolution=False))
    net = VisionSuperNetwork(VisionSupernetConfig(num_blocks=num_blocks))
    teacher = VisionTeacher(VisionTaskConfig(batch_size=32))
    return space, net, teacher


class TestVisionSupernet:
    def test_forward_shape(self):
        space, net, teacher = vision_setup()
        batch = teacher.next_batch()
        logits = net(space.default_architecture(), batch.inputs)
        assert logits.shape == (32, 4)

    def test_any_sampled_arch_runs(self):
        space, net, teacher = vision_setup()
        rng = np.random.default_rng(3)
        batch = teacher.next_batch()
        for _ in range(10):
            arch = space.sample(rng)
            logits = net(arch, batch.inputs)
            assert np.all(np.isfinite(logits.data))

    def test_width_delta_changes_output(self):
        space, net, teacher = vision_setup()
        batch = teacher.next_batch()
        base = space.default_architecture()
        wider = base.replaced(**{"block0/width_delta": 4})
        assert not np.allclose(
            net(base, batch.inputs).data, net(wider, batch.inputs).data
        )

    def test_performance_only_decisions_do_not_change_quality_path(self):
        """Kernel/stride/reshaping/type only matter to the perf model."""
        space, net, teacher = vision_setup()
        batch = teacher.next_batch()
        base = space.default_architecture()
        variant = base.replaced(
            **{
                "block0/kernel": 7,
                "block0/stride": 2,
                "block0/reshaping": "space_to_depth",
                "block0/type": "fused_mbconv",
            }
        )
        np.testing.assert_allclose(
            net(base, batch.inputs).data, net(variant, batch.inputs).data
        )

    def test_se_ratio_zero_disables_gate(self):
        space, net, teacher = vision_setup()
        batch = teacher.next_batch()
        base = space.default_architecture()
        no_se = base.replaced(**{"block0/se_ratio": 0.0, "block1/se_ratio": 0.0})
        with_se = base.replaced(**{"block0/se_ratio": 1.0, "block1/se_ratio": 1.0})
        assert not np.allclose(
            net(no_se, batch.inputs).data, net(with_se, batch.inputs).data
        )

    def test_training_reduces_loss(self):
        space, net, teacher = vision_setup()
        arch = space.default_architecture()
        opt = Adam(net.parameters(), lr=0.005)
        losses = []
        for _ in range(40):
            batch = teacher.next_batch()
            opt.zero_grad()
            loss = net.loss(arch, batch.inputs, batch.labels)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_weight_sharing_gradient_overlap(self):
        """Two different candidates accumulate gradient into shared weights."""
        space, net, teacher = vision_setup()
        batch = teacher.next_batch()
        base = space.default_architecture()
        wide = base.replaced(**{"block0/width_delta": 4})
        net.zero_grad()
        net.loss(base, batch.inputs, batch.labels).backward()
        grad_base = net.blocks[0].expands[0].weight.grad.copy()
        net.zero_grad()
        net.loss(wide, batch.inputs, batch.labels).backward()
        grad_wide = net.blocks[0].expands[0].weight.grad.copy()
        overlap = (grad_base != 0) & (grad_wide != 0)
        assert overlap.any()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VisionSupernetConfig(base_width=16)
        with pytest.raises(ValueError):
            VisionSupernetConfig(base_depth=0)

    def test_quality_bounds(self):
        space, net, teacher = vision_setup()
        batch = teacher.next_batch()
        q = net.quality(space.default_architecture(), batch.inputs, batch.labels)
        assert 0.0 <= q <= 1.0
