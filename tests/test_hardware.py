"""Tests for hardware configs, roofline, simulator, power, and testbed."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import OpGraph, OpNode, ops
from repro.hardware import (
    GPU_V100,
    HardwareConfig,
    HardwareTestbed,
    PerformanceSimulator,
    TPU_V4,
    TPU_V4I,
    TestbedCalibration,
    graph_roofline,
    mxu_efficiency,
    peak_compute_rate,
    platform,
    power_report,
    roofline_point,
    simulate,
    tile_efficiency,
)


class TestHardwareConfig:
    def test_builtin_platforms(self):
        assert platform("tpu_v4") is TPU_V4
        assert platform("tpu_v4i") is TPU_V4I
        assert platform("gpu_v100") is GPU_V100

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            platform("tpu_v9")

    def test_derived_units(self):
        assert TPU_V4.peak_matrix_flops == 275e12
        assert TPU_V4.hbm_bandwidth == 1228e9
        assert TPU_V4.cmem_capacity_bytes == 128e6

    def test_ridge_intensity_reasonable(self):
        # TPUv4 ridge: 275e12 / 1228e9 ~ 224 FLOPs/byte.
        assert 150 < TPU_V4.ridge_intensity < 300

    def test_validation(self):
        with pytest.raises(ValueError):
            TPU_V4.with_overrides(hbm_bandwidth_gbs=0.0)
        with pytest.raises(ValueError):
            TPU_V4.with_overrides(max_power_w=10.0)

    def test_with_overrides(self):
        faster = TPU_V4.with_overrides(hbm_bandwidth_gbs=2456.0)
        assert faster.hbm_bandwidth == 2456e9
        assert TPU_V4.hbm_bandwidth == 1228e9  # original untouched


class TestRoofline:
    def test_tile_efficiency_exact_multiple(self):
        assert tile_efficiency(128, 128) == 1.0
        assert tile_efficiency(256, 128) == 1.0

    def test_tile_efficiency_padding_waste(self):
        assert tile_efficiency(100, 128) == pytest.approx(100 / 128)
        assert tile_efficiency(129, 128) == pytest.approx(129 / 256)

    def test_tile_efficiency_invalid(self):
        with pytest.raises(ValueError):
            tile_efficiency(0, 128)

    def test_mxu_efficiency_aligned_dims(self):
        assert mxu_efficiency((8, 128, 128), TPU_V4) == 1.0

    def test_mxu_efficiency_small_dims_penalized(self):
        assert mxu_efficiency((8, 1, 1), TPU_V4) < 0.001

    def test_peak_rate_vpu_for_depthwise(self):
        dw = ops.depthwise_conv2d("d", 32, 32, 128, 3)
        assert peak_compute_rate(dw, TPU_V4) == TPU_V4.peak_vector_flops

    def test_roofline_point_memory_bound_low_intensity(self):
        op = OpNode("x", "dense", flops=100.0, bytes_in=1e6, unit="mxu", dims=(128, 128, 128))
        pt = roofline_point(op, TPU_V4)
        assert not pt.compute_bound
        assert pt.attained_flops == pytest.approx(op.operational_intensity * TPU_V4.hbm_bandwidth)

    def test_roofline_point_compute_bound_high_intensity(self):
        op = ops.dense("fc", batch=4096, nin=4096, nout=4096)
        pt = roofline_point(op, TPU_V4)
        assert pt.compute_bound

    def test_graph_roofline_compute_bound(self):
        attained, bound = graph_roofline(flops=1e15, total_bytes=1e9, hw=TPU_V4)
        assert bound and attained == TPU_V4.peak_matrix_flops

    def test_graph_roofline_memory_bound(self):
        attained, bound = graph_roofline(flops=1e9, total_bytes=1e9, hw=TPU_V4)
        assert not bound
        assert attained == pytest.approx(TPU_V4.hbm_bandwidth)


def simple_graph(batch=128, nin=1024, nout=1024, layers=3):
    g = OpGraph("mlp")
    nodes = [ops.dense(f"fc{i}", batch, nin, nout) for i in range(layers)]
    g.chain(nodes)
    return g


class TestSimulator:
    def test_total_time_positive_and_sums_chain(self):
        g = simple_graph()
        res = simulate(g, TPU_V4)
        assert res.total_time_s > 0
        assert res.total_time_s == pytest.approx(res.serial_time_s)  # pure chain

    def test_parallel_branches_overlap(self):
        g = OpGraph("par")
        g.add(ops.dense("stem", 128, 256, 256))
        g.add(ops.dense("a", 128, 4096, 4096), deps=["stem"])
        g.add(ops.dense("b", 128, 256, 256), deps=["stem"])
        g.add(ops.concat("join", 128 * (4096 + 256)), deps=["a", "b"])
        res = simulate(g, TPU_V4)
        assert res.total_time_s < res.serial_time_s
        assert "a" in res.critical_path and "b" not in res.critical_path

    def test_flops_conserved(self):
        g = simple_graph()
        res = simulate(g, TPU_V4)
        assert res.total_flops == pytest.approx(g.total_flops)

    def test_achieved_flops_below_peak(self):
        res = simulate(simple_graph(), TPU_V4)
        assert 0 < res.achieved_flops <= TPU_V4.peak_matrix_flops

    def test_embedding_is_memory_or_network_bound(self):
        g = OpGraph("emb")
        g.add(ops.embedding_lookup("e", lookups=int(1e6), width=128))
        res = simulate(g, TPU_V4)
        timing = res.op_timings["e"]
        assert timing.bound in ("memory", "network")
        assert timing.cmem_bytes == 0  # tables never fit CMEM

    def test_small_activations_stay_in_cmem(self):
        g = OpGraph("tiny")
        g.add(ops.dense("fc", batch=8, nin=64, nout=64))
        res = simulate(g, TPU_V4)
        t = res.op_timings["fc"]
        assert t.cmem_bytes > 0
        assert t.hbm_bytes == pytest.approx(64 * 64 * 2)  # params only

    def test_huge_activations_spill_to_hbm(self):
        g = OpGraph("big")
        g.add(ops.dense("fc", batch=65536, nin=4096, nout=4096))
        res = simulate(g, TPU_V4)
        assert res.op_timings["fc"].hbm_bytes > res.op_timings["fc"].cmem_bytes

    def test_depthwise_slower_per_flop_than_conv(self):
        """The Figure-4 effect: depthwise FLOPs run at VPU, not MXU, rate."""
        gd, gc = OpGraph("dw"), OpGraph("conv")
        gd.add(ops.depthwise_conv2d("d", 64, 64, 128, 3, batch=64))
        gc.add(ops.conv2d("c", 64, 64, 128, 128, 3, batch=64))
        rd, rc = simulate(gd, TPU_V4), simulate(gc, TPU_V4)
        # conv has 128x the FLOPs but takes far less than 128x the time
        assert rc.total_time_s < rd.total_time_s * 128 / 4

    def test_bound_fraction_sums_to_one(self):
        g = simple_graph()
        res = simulate(g, TPU_V4)
        total = sum(
            res.bound_fraction(b) for b in ("compute", "memory", "network", "overhead")
        )
        assert total == pytest.approx(1.0)

    @given(st.integers(16, 512), st.integers(16, 512))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_layer_width(self, nin, nout):
        small = simulate(simple_graph(nin=nin, nout=nout, layers=2), TPU_V4)
        big = simulate(simple_graph(nin=nin * 2, nout=nout * 2, layers=2), TPU_V4)
        assert big.total_time_s >= small.total_time_s


class TestPowerModel:
    def test_power_between_idle_and_max(self):
        res = simulate(simple_graph(), TPU_V4)
        report = power_report(res, TPU_V4)
        assert TPU_V4.idle_power_w <= report.power_w <= TPU_V4.max_power_w

    def test_energy_is_power_times_time(self):
        res = simulate(simple_graph(), TPU_V4)
        report = power_report(res, TPU_V4)
        assert report.energy_j == pytest.approx(report.power_w * res.total_time_s)

    def test_memory_bound_model_draws_less_power(self):
        """Low-utilization (memory-bound) models sit near idle power."""
        g = OpGraph("memb")
        g.add(ops.embedding_lookup("e", lookups=int(1e6), width=64))
        res = simulate(g, TPU_V4)
        report = power_report(res, TPU_V4)
        compute = simulate(simple_graph(batch=4096, nin=4096, nout=4096), TPU_V4)
        compute_report = power_report(compute, TPU_V4)
        assert report.power_w < compute_report.power_w

    def test_mxu_utilization_bounded(self):
        res = simulate(simple_graph(), TPU_V4)
        report = power_report(res, TPU_V4)
        assert 0 <= report.mxu_utilization <= 1


class TestTestbed:
    def test_measurement_slower_than_simulation(self):
        g = simple_graph()
        bed = HardwareTestbed(TPU_V4, seed=1)
        sim = bed.simulate(g).total_time_s
        measured = bed.deterministic_time(g)
        assert measured > sim

    def test_measurement_noise_bounded(self):
        g = simple_graph()
        bed = HardwareTestbed(TPU_V4, seed=2)
        times = [bed.measure_time(g) for _ in range(20)]
        spread = (max(times) - min(times)) / np.mean(times)
        assert 0 < spread < 0.2

    def test_deterministic_time_reproducible(self):
        g = simple_graph()
        a = HardwareTestbed(TPU_V4, seed=3).deterministic_time(g)
        b = HardwareTestbed(TPU_V4, seed=99).deterministic_time(g)
        assert a == pytest.approx(b)

    def test_gap_is_systematic_tens_of_percent(self):
        """The simulator-vs-hardware gap matches Table 1's premise."""
        g = simple_graph(batch=256, nin=2048, nout=2048, layers=8)
        bed = HardwareTestbed(TPU_V4)
        sim = bed.simulate(g).total_time_s
        hw = bed.deterministic_time(g)
        gap = hw / sim - 1.0
        assert 0.10 < gap < 0.60

    def test_throughput(self):
        g = simple_graph()
        bed = HardwareTestbed(TPU_V4, seed=4)
        tp = bed.measure_throughput(g, examples_per_step=128)
        assert tp == pytest.approx(128 / bed.measure_time(g), rel=0.1)

    def test_custom_calibration(self):
        cal = TestbedCalibration(scale=2.0, exponent=1.0, per_op_overhead_s=0.0, noise_sigma=0.0)
        bed = HardwareTestbed(TPU_V4, calibration=cal)
        g = simple_graph()
        assert bed.deterministic_time(g) == pytest.approx(2.0 * bed.simulate(g).total_time_s)


class TestSimulatorCompilerPasses:
    def test_passes_reduce_time(self):
        from repro.graph import ops as graph_ops
        from repro.hardware.simulator import PerformanceSimulator

        graph = OpGraph("with_act")
        graph.add(graph_ops.dense("fc", 64, 1024, 1024))
        graph.add(
            graph_ops.elementwise("act", 64 * 1024, op_type="activation"),
            deps=["fc"],
        )
        raw = PerformanceSimulator(TPU_V4).simulate(graph)
        fused = PerformanceSimulator(TPU_V4, run_compiler_passes=True).simulate(graph)
        assert fused.total_time_s <= raw.total_time_s
        assert fused.total_flops == pytest.approx(raw.total_flops)

    def test_input_graph_not_mutated(self):
        from repro.graph import ops as graph_ops
        from repro.hardware.simulator import PerformanceSimulator

        graph = OpGraph("keep")
        graph.add(graph_ops.dense("fc", 8, 64, 64))
        graph.add(
            graph_ops.elementwise("act", 8 * 64, op_type="activation"), deps=["fc"]
        )
        PerformanceSimulator(TPU_V4, run_compiler_passes=True).simulate(graph)
        assert "act" in graph


class TestMemoryFit:
    def test_fits_memory(self):
        assert TPU_V4.fits_memory(1e9)
        assert not TPU_V4.fits_memory(100e9)  # 32 GB chip
        assert not TPU_V4I.fits_memory(10e9)  # 8 GB chip
