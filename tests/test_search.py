"""Integration tests for the single-step and TuNAS search algorithms."""

import numpy as np
import pytest

from repro.core import (
    H2ONas,
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    TunasSearch,
    absolute_reward,
    relu_reward,
)
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline, TwoStreamPipeline
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig, WIDTH_INCREMENT


NUM_TABLES = 2


def build_space():
    return dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))


def build_supernet(seed=0):
    return DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed))


def capacity_cost(arch):
    """Synthetic step-time: grows with embedding/MLP capacity."""
    cost = 1.0
    for t in range(NUM_TABLES):
        cost += 0.05 * arch[f"emb{t}/width_delta"]
        cost += 0.2 * (arch[f"emb{t}/vocab_scale"] - 1.0)
    for s in range(2):
        cost += 0.04 * arch[f"dense{s}/width_delta"]
        cost += 0.05 * arch[f"dense{s}/depth_delta"]
        cost += 0.3 * (arch[f"dense{s}/low_rank"] - 0.5)
    return {"step_time": max(0.1, cost), "model_size": max(0.1, cost)}


def make_teacher(seed=0):
    return CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=32, seed=seed))


class TestSingleStepSearch:
    def test_runs_and_returns_valid_architecture(self):
        space = build_space()
        search = SingleStepSearch(
            space=space,
            supernet=build_supernet(),
            pipeline=SingleStepPipeline(make_teacher().next_batch),
            reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
            performance_fn=capacity_cost,
            config=SearchConfig(steps=12, num_cores=2, warmup_steps=3, seed=0),
        )
        result = search.run()
        space.validate(result.final_architecture)
        assert len(result.history) == 12

    def test_every_batch_used_once_policy_first(self):
        """The search obeys the pipeline protocol: steps x cores batches."""
        pipeline = SingleStepPipeline(make_teacher().next_batch)
        search = SingleStepSearch(
            space=build_space(),
            supernet=build_supernet(),
            pipeline=pipeline,
            reward_fn=relu_reward([]),
            performance_fn=lambda arch: {},
            config=SearchConfig(steps=5, num_cores=3, warmup_steps=1),
        )
        result = search.run()
        assert result.batches_used == 5 * 3
        assert pipeline.batches_issued == 15

    def test_tight_latency_target_pushes_towards_small_models(self):
        """With flat quality, a tight target should select cheap candidates."""
        space = build_space()
        search = SingleStepSearch(
            space=space,
            supernet=build_supernet(),
            pipeline=SingleStepPipeline(make_teacher().next_batch),
            reward_fn=relu_reward(
                [PerformanceObjective("step_time", 0.5, beta=-4.0)]
            ),
            performance_fn=capacity_cost,
            config=SearchConfig(
                steps=120, num_cores=4, warmup_steps=5, policy_lr=0.4, seed=1
            ),
        )
        result = search.run()
        best_cost = capacity_cost(result.final_architecture)["step_time"]
        default_cost = capacity_cost(space.default_architecture())["step_time"]
        assert best_cost < default_cost

    def test_history_records_candidates(self):
        search = SingleStepSearch(
            space=build_space(),
            supernet=build_supernet(),
            pipeline=SingleStepPipeline(make_teacher().next_batch),
            reward_fn=relu_reward([]),
            performance_fn=lambda arch: {},
            config=SearchConfig(steps=3, num_cores=2, warmup_steps=0),
        )
        result = search.run()
        assert len(result.all_candidates) == 6
        for candidate in result.all_candidates:
            assert 0.0 <= candidate.quality <= 1.0

    def test_record_candidates_off(self):
        search = SingleStepSearch(
            space=build_space(),
            supernet=build_supernet(),
            pipeline=SingleStepPipeline(make_teacher().next_batch),
            reward_fn=relu_reward([]),
            performance_fn=lambda arch: {},
            config=SearchConfig(steps=3, num_cores=2, record_candidates=False),
        )
        assert search.run().all_candidates == []

    def test_entropy_trace_monotone_overall(self):
        """Policy entropy should drop as the search converges."""
        search = SingleStepSearch(
            space=build_space(),
            supernet=build_supernet(),
            pipeline=SingleStepPipeline(make_teacher().next_batch),
            reward_fn=relu_reward([PerformanceObjective("step_time", 0.5, -4.0)]),
            performance_fn=capacity_cost,
            config=SearchConfig(steps=80, num_cores=4, warmup_steps=5, seed=2),
        )
        entropies = search.run().entropies()
        assert entropies[-1] < entropies[0]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(steps=0)
        with pytest.raises(ValueError):
            SearchConfig(num_cores=0)
        with pytest.raises(ValueError):
            SearchConfig(warmup_steps=-1)


class TestTunasSearch:
    def test_runs_on_two_streams(self):
        space = build_space()
        teacher = make_teacher()
        pipeline = TwoStreamPipeline(teacher.next_batch, train_batches=8, valid_batches=4)
        search = TunasSearch(
            space=space,
            supernet=build_supernet(),
            pipeline=pipeline,
            reward_fn=absolute_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
            performance_fn=capacity_cost,
            config=SearchConfig(steps=20, num_cores=2, warmup_steps=3),
        )
        result = search.run()
        space.validate(result.final_architecture)
        assert pipeline.train_reuses >= 1  # data reuse, unlike single-step

    def test_uses_fixed_dataset(self):
        teacher = make_teacher()
        pipeline = TwoStreamPipeline(teacher.next_batch, train_batches=4, valid_batches=2)
        search = TunasSearch(
            space=build_space(),
            supernet=build_supernet(),
            pipeline=pipeline,
            reward_fn=relu_reward([]),
            performance_fn=lambda arch: {},
            config=SearchConfig(steps=10, num_cores=2),
        )
        result = search.run()
        assert result.batches_used == 6  # train + valid splits only


class TestH2ONasFacade:
    def test_end_to_end(self):
        space = build_space()
        nas = H2ONas(
            space=space,
            supernet=build_supernet(),
            batch_source=make_teacher().next_batch,
            performance_fn=capacity_cost,
            objectives=[PerformanceObjective("step_time", 1.0, -1.0)],
            config=SearchConfig(steps=8, num_cores=2, warmup_steps=2),
        )
        result = nas.search()
        space.validate(result.final_architecture)
        held_out = make_teacher(seed=77).next_batch()
        q = nas.evaluate(result.final_architecture, held_out)
        assert 0.0 <= q <= 1.0

    def test_invalid_reward_kind(self):
        with pytest.raises(ValueError):
            H2ONas(
                space=build_space(),
                supernet=build_supernet(),
                batch_source=make_teacher().next_batch,
                performance_fn=capacity_cost,
                objectives=[],
                reward_kind="softmax",
            )
