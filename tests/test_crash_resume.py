"""Crash/resume bit-identity: the fault-tolerant runtime's core property.

A search killed at step ``k`` — at a checkpoint boundary, between
snapshots, or mid-shard while cores are still scoring candidates — and
resumed from the newest snapshot must produce a ``SearchResult``
bit-identical to an uninterrupted run: same per-step rewards and
entropies, same final architecture, same cache counters, same batch
accounting.  (Wall-clock stage timings are the one excluded field.)
Checked for both search strategies, and end-to-end through the
supervisor with three crashes injected into a single run.
"""

import numpy as np
import pytest

from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    TunasSearch,
    relu_reward,
)
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline, TwoStreamPipeline
from repro.runtime import (
    CheckpointStore,
    FaultInjector,
    FaultSpec,
    SearchSupervisor,
    SupervisorConfig,
    resume_search,
    search_checkpoint_payload,
)
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig

NUM_TABLES = 2
STEPS = 10


def build_space():
    return dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))


def capacity_cost(arch):
    cost = 1.0
    for t in range(NUM_TABLES):
        cost += 0.05 * arch[f"emb{t}/width_delta"]
        cost += 0.2 * (arch[f"emb{t}/vocab_scale"] - 1.0)
    for s in range(2):
        cost += 0.04 * arch[f"dense{s}/width_delta"]
    return {"step_time": max(0.1, cost), "model_size": max(0.1, cost)}


def build_single(seed=0, telemetry=None):
    teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed))
    return SingleStepSearch(
        space=build_space(),
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=capacity_cost,
        config=SearchConfig(
            steps=STEPS, num_cores=2, warmup_steps=3, seed=seed, telemetry=telemetry
        ),
    )


def build_tunas(seed=0, telemetry=None):
    teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed))
    return TunasSearch(
        space=build_space(),
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)),
        pipeline=TwoStreamPipeline(teacher.next_batch, train_batches=6, valid_batches=4),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=capacity_cost,
        config=SearchConfig(
            steps=STEPS, num_cores=2, warmup_steps=3, seed=seed, telemetry=telemetry
        ),
    )


BUILDERS = {"single_step": build_single, "tunas": build_tunas}


def assert_results_identical(reference, resumed, space):
    """Bit-identical SearchResults (stage wall-times excluded)."""
    np.testing.assert_array_equal(reference.rewards(), resumed.rewards())
    np.testing.assert_array_equal(reference.entropies(), resumed.entropies())
    assert list(space.indices_of(reference.final_architecture)) == list(
        space.indices_of(resumed.final_architecture)
    )
    assert reference.batches_used == resumed.batches_used
    assert reference.eval_stats.cache_hits == resumed.eval_stats.cache_hits
    assert reference.eval_stats.cache_misses == resumed.eval_stats.cache_misses


class TestKillAndResume:
    """Manual kill at step k, snapshot-every-step, resume in a fresh process."""

    # k=4 lands exactly on a checkpoint_every=2 boundary; k=5 is
    # mid-interval (resume replays one step); k=7 crosses warmup history.
    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    @pytest.mark.parametrize("kill_at", [4, 5, 7])
    def test_resume_bit_identical(self, tmp_path, strategy, kill_at):
        build = BUILDERS[strategy]
        reference = build().run()

        store = CheckpointStore(tmp_path, keep_last=2)
        dying = build()
        history = []
        for step in range(kill_at):
            history.append(dying.step(step))
            store.save(step + 1, search_checkpoint_payload(dying, step + 1, history))
        del dying  # the "process" is gone; only the store survives

        fresh = build()
        next_step, history, report = resume_search(store, fresh)
        assert report.resumed and next_step == kill_at
        for step in range(next_step, fresh.config.steps):
            history.append(fresh.step(step))
        resumed = fresh.build_result(history)
        assert_results_identical(reference, resumed, fresh.space)


class TestSupervisedCrashResume:
    """The acceptance property: supervisor + injected crashes end to end."""

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_three_crash_points_still_bit_identical(self, tmp_path, strategy):
        build = BUILDERS[strategy]
        reference = build().run()

        # Three distinct crash points: before the first snapshot exists
        # (restart from scratch), at a snapshot boundary, and mid-run.
        injector = FaultInjector(
            [
                FaultSpec("crash", step=1),
                FaultSpec("crash", step=4),
                FaultSpec("crash", step=7),
            ]
        )
        supervisor = SearchSupervisor(
            build,
            CheckpointStore(tmp_path, keep_last=3),
            SupervisorConfig(checkpoint_every=2, max_restarts=5, backoff_base_s=0.0),
            injector=injector,
            sleep_fn=lambda s: None,
        )
        outcome = supervisor.run()
        assert outcome.restarts == 3
        assert [f.step for f in injector.fired] == [1, 4, 7]
        assert_results_identical(reference, outcome.result, build().space)

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_mid_shard_crash_bit_identical(self, tmp_path, strategy):
        """Death while cores are mid-scoring, not between steps."""
        build = BUILDERS[strategy]
        reference = build().run()

        injector = FaultInjector(
            [FaultSpec("crash", step=5, phase="mid", mid_after_calls=1)]
        )
        supervisor = SearchSupervisor(
            build,
            CheckpointStore(tmp_path),
            SupervisorConfig(checkpoint_every=2, max_restarts=3, backoff_base_s=0.0),
            injector=injector,
            sleep_fn=lambda s: None,
        )
        outcome = supervisor.run()
        assert outcome.restarts == 1
        assert [f.step for f in injector.fired] == [5]
        # The half-scored step rolled back to the step-4 snapshot and
        # was replayed in full by the second attempt.
        assert outcome.steps_replayed == 1
        assert_results_identical(reference, outcome.result, build().space)

    def test_after_phase_crash_bit_identical(self, tmp_path):
        """Step completes, worker dies before the next snapshot lands."""
        build = build_single
        reference = build().run()
        injector = FaultInjector([FaultSpec("crash", step=6, phase="after")])
        supervisor = SearchSupervisor(
            build,
            CheckpointStore(tmp_path),
            SupervisorConfig(checkpoint_every=3, max_restarts=3, backoff_base_s=0.0),
            injector=injector,
            sleep_fn=lambda s: None,
        )
        outcome = supervisor.run()
        assert outcome.restarts == 1
        # Step 6 completed but its work died with the process; the
        # newest snapshot (6 completed steps) replays it exactly.
        assert_results_identical(reference, outcome.result, build().space)


def build_elastic(seed=0, telemetry=None):
    from repro.core import ElasticTraining
    from repro.supernet import ShrinkSchedule

    teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed))
    return ElasticTraining(
        build_space(),
        DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)),
        SingleStepPipeline(teacher.next_batch),
        schedule=ShrinkSchedule.default(STEPS),
        config=SearchConfig(
            steps=STEPS, num_cores=2, warmup_steps=0, seed=seed, telemetry=telemetry
        ),
    )


class TestElasticCrashResume:
    """Progressive-shrinking training killed and resumed stays bit-identical.

    ``ShrinkSchedule.default(10)`` switches phases at steps 3 and 6, so
    kill points cover mid-phase (4), exactly at a phase boundary (3, 6),
    and resuming *into* a later phase than the one that was running.
    """

    @pytest.mark.parametrize("kill_at", [3, 4, 6])
    def test_resume_bit_identical(self, tmp_path, kill_at):
        reference = build_elastic().run()

        store = CheckpointStore(tmp_path / "ckpt", keep_last=2)
        dying = build_elastic()
        history = []
        for step in range(kill_at):
            history.append(dying.step(step))
            store.save(step + 1, search_checkpoint_payload(dying, step + 1, history))
        del dying

        fresh = build_elastic()
        next_step, history, report = resume_search(store, fresh)
        assert report.resumed and next_step == kill_at
        for step in range(next_step, fresh.config.steps):
            history.append(fresh.step(step))
        resumed = fresh.build_result(history)
        assert_results_identical(reference, resumed, fresh.space)

    def test_resumed_artifact_weights_bit_identical(self, tmp_path):
        """The saved artifacts — not just the histories — match exactly."""
        from repro.runtime import save_elastic_artifact

        reference = build_elastic()
        for step in range(STEPS):
            reference.step(step)

        store = CheckpointStore(tmp_path / "ckpt")
        dying = build_elastic()
        history = []
        for step in range(4):
            history.append(dying.step(step))
            store.save(step + 1, search_checkpoint_payload(dying, step + 1, history))
        del dying
        fresh = build_elastic()
        next_step, history, _ = resume_search(store, fresh)
        for step in range(next_step, STEPS):
            fresh.step(step)

        ref_art = save_elastic_artifact(
            tmp_path / "ref", reference.supernet, reference.space,
            reference.schedule, trained_steps=STEPS, seed=0,
        )
        res_art = save_elastic_artifact(
            tmp_path / "res", fresh.supernet, fresh.space,
            fresh.schedule, trained_steps=STEPS, seed=0,
        )
        assert ref_art.weights_sha == res_art.weights_sha

        # A specialization against either artifact is bit-identical too.
        from repro.service.jobs import specialization_builder

        runs = []
        for directory in (tmp_path / "ref", tmp_path / "res"):
            space, factory = specialization_builder(directory, "tpu_v4", 4, 0)
            runs.append(factory().run())
        assert_results_identical(runs[0], runs[1], space)

    def test_schedule_mismatch_rejected_on_resume(self, tmp_path):
        """A snapshot from a different shrink schedule must not load."""
        from repro.runtime import CheckpointError
        from repro.supernet import ShrinkPhase, ShrinkSchedule

        store = CheckpointStore(tmp_path)
        search = build_elastic()
        history = [search.step(0)]
        store.save(1, search_checkpoint_payload(search, 1, history))

        other = build_elastic()
        other.schedule = ShrinkSchedule((ShrinkPhase("full", 0),))
        with pytest.raises(CheckpointError, match="schedule"):
            resume_search(store, other)


class TestSpecializationCrashResume:
    """Policy-only specialization killed mid-run resumes bit-identically."""

    def _build(self, artifact_dir):
        from repro.service.jobs import specialization_builder

        space, factory = specialization_builder(artifact_dir, "tpu_v4i", STEPS, 0)
        return space, factory

    @pytest.mark.parametrize("kill_at", [2, 5])
    def test_resume_bit_identical(self, tmp_path, kill_at):
        from repro.runtime import save_elastic_artifact

        trained = build_elastic()
        for step in range(STEPS):
            trained.step(step)
        artifact_dir = tmp_path / "artifact"
        save_elastic_artifact(
            artifact_dir, trained.supernet, trained.space, trained.schedule,
            trained_steps=STEPS, seed=0,
        )

        space, factory = self._build(artifact_dir)
        reference = factory().run()

        store = CheckpointStore(tmp_path / "ckpt", keep_last=2)
        dying = factory()
        history = []
        for step in range(kill_at):
            history.append(dying.step(step))
            store.save(step + 1, search_checkpoint_payload(dying, step + 1, history))
        del dying

        fresh = factory()
        next_step, history, report = resume_search(store, fresh)
        assert report.resumed and next_step == kill_at
        for step in range(next_step, fresh.config.steps):
            history.append(fresh.step(step))
        resumed = fresh.build_result(history)
        assert_results_identical(reference, resumed, space)


#: Run-scoped counters that must be bit-identical across crash/resume.
RUN_COUNTERS = (
    "search.steps",
    "search.heartbeats",
    "eval.candidates_priced",
    "eval.evaluations",
    "eval.cache.hits",
    "eval.cache.misses",
    "pipeline.batches",
)


class TestTelemetryCrashResume:
    """Crash-resumed runs must report the same telemetry totals as
    uninterrupted runs — run-scoped counters roll back with the
    checkpoint, churn counters keep recording what really happened."""

    @staticmethod
    def _run_scoped(telemetry):
        from repro.telemetry import CHURN_PREFIXES

        snapshot = telemetry.registry.snapshot()
        return {
            kind: {
                name: series
                for name, series in snapshot[kind].items()
                if not name.startswith(CHURN_PREFIXES)
            }
            for kind in ("counters", "gauges")
        }

    @pytest.mark.parametrize("strategy", sorted(BUILDERS))
    def test_counter_totals_identical_after_three_crashes(self, tmp_path, strategy):
        from repro.runtime import run_with_checkpoints
        from repro.telemetry import Telemetry

        build = BUILDERS[strategy]
        ref_tel = Telemetry()
        run_with_checkpoints(build(telemetry=ref_tel), store=None)

        # Crash before the first snapshot (fresh restart), at a
        # checkpoint boundary, and mid-interval.
        crash_tel = Telemetry()
        injector = FaultInjector(
            [
                FaultSpec("crash", step=1),
                FaultSpec("crash", step=4),
                FaultSpec("crash", step=7),
            ]
        )
        supervisor = SearchSupervisor(
            lambda: build(telemetry=crash_tel),
            CheckpointStore(tmp_path, keep_last=3),
            SupervisorConfig(checkpoint_every=2, max_restarts=5, backoff_base_s=0.0),
            injector=injector,
            sleep_fn=lambda s: None,
        )
        outcome = supervisor.run()
        assert outcome.restarts == 3

        for name in RUN_COUNTERS:
            assert crash_tel.counter(name).total() == ref_tel.counter(name).total(), name
        assert crash_tel.counter("search.steps").total() == STEPS
        # Every run-scoped counter and gauge series, not just the list above.
        assert self._run_scoped(crash_tel) == self._run_scoped(ref_tel)
        # Churn counters record the crashes and resumes that really happened.
        assert crash_tel.counter("supervisor.crashes").total() == 3
        assert crash_tel.counter("supervisor.restarts").total() == 3
        assert crash_tel.counter("recovery.resumes").total() == 2
        assert crash_tel.counter("checkpoint.saves").total() >= 1
        # The uninterrupted reference saw none of that churn.
        assert ref_tel.counter("supervisor.crashes").total() == 0

    def test_telemetry_state_roundtrips_through_checkpoint(self, tmp_path):
        """The telemetry registry state rides inside the snapshot payload."""
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        search = build_single(telemetry=telemetry)
        history = [search.step(step) for step in range(4)]
        store = CheckpointStore(tmp_path)
        store.save(4, search_checkpoint_payload(search, 4, history))

        fresh_tel = Telemetry()
        fresh = build_single(telemetry=fresh_tel)
        next_step, _, report = resume_search(store, fresh)
        assert report.resumed and next_step == 4
        assert fresh_tel.counter("search.steps").value() == 4
        assert fresh_tel.counter("eval.candidates_priced").value() == telemetry.counter(
            "eval.candidates_priced"
        ).value()
