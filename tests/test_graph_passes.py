"""Tests for compiler-style graph passes and the cluster model."""

import numpy as np
import pytest

from repro.graph import OpGraph, OpNode, ops, passes
from repro.hardware import (
    ClusterModel,
    TPU_V4,
    allreduce_time,
    simulate,
)
from repro.models.coatnet import COATNET, build_graph as build_coatnet


def conv_act_chain():
    graph = OpGraph("chain")
    graph.add(ops.conv2d("conv", 28, 28, 32, 32, 3, batch=8))
    graph.add(ops.elementwise("act", 8 * 28 * 28 * 32, op_type="activation"), deps=["conv"])
    graph.add(ops.conv2d("conv2", 28, 28, 32, 32, 3, batch=8), deps=["act"])
    return graph


class TestFuseElementwise:
    def test_fuses_single_consumer_activation(self):
        fused = passes.fuse_elementwise(conv_act_chain())
        assert len(fused) == 2
        assert "act" not in fused
        assert fused.node("conv").attrs["fused_ops"] == 1

    def test_flops_conserved(self):
        graph = conv_act_chain()
        fused = passes.fuse_elementwise(graph)
        assert fused.total_flops == pytest.approx(graph.total_flops)

    def test_intermediate_traffic_removed(self):
        graph = conv_act_chain()
        fused = passes.fuse_elementwise(graph)
        # The activation's input read and the producer's output write
        # cancel: total bytes strictly drop.
        assert fused.total_bytes < graph.total_bytes

    def test_edges_spliced(self):
        fused = passes.fuse_elementwise(conv_act_chain())
        assert fused.predecessors("conv2") == ["conv"]

    def test_multi_consumer_not_fused(self):
        graph = OpGraph("fanout")
        graph.add(ops.conv2d("conv", 28, 28, 32, 32, 3))
        graph.add(ops.elementwise("act", 28 * 28 * 32, op_type="activation"), deps=["conv"])
        graph.add(ops.pooling("p", 28, 28, 32, 2), deps=["conv"])  # second consumer
        fused = passes.fuse_elementwise(graph)
        assert "act" in fused  # producer output reused: must materialize

    def test_multi_producer_not_fused(self):
        graph = OpGraph("join")
        graph.add(ops.conv2d("a", 28, 28, 32, 32, 3))
        graph.add(ops.conv2d("b", 28, 28, 32, 32, 3))
        graph.add(ops.elementwise("add", 28 * 28 * 32, op_type="add"), deps=["a", "b"])
        fused = passes.fuse_elementwise(graph)
        assert "add" in fused

    def test_embedding_lookup_not_a_fusion_producer(self):
        graph = OpGraph("emb")
        graph.add(ops.embedding_lookup("lookup", 1024, 32))
        graph.add(
            ops.elementwise("pool", 1024 * 32, op_type="pooling_sum"), deps=["lookup"]
        )
        fused = passes.fuse_elementwise(graph)
        assert "pool" in fused

    def test_matmul_not_fused_into_anything(self):
        graph = OpGraph("mm")
        graph.add(ops.dense("fc1", 8, 64, 64))
        graph.add(ops.dense("fc2", 8, 64, 64), deps=["fc1"])
        fused = passes.fuse_elementwise(graph)
        assert len(fused) == 2


class TestEliminateDeadOps:
    def test_zero_cost_op_removed(self):
        graph = OpGraph("dead")
        graph.add(ops.dense("fc", 8, 64, 64))
        graph.add(OpNode("noop", "reshape"), deps=["fc"])
        graph.add(ops.dense("fc2", 8, 64, 64), deps=["noop"])
        cleaned = passes.eliminate_dead_ops(graph)
        assert "noop" not in cleaned
        assert cleaned.predecessors("fc2") == ["fc"]

    def test_never_empties_graph(self):
        graph = OpGraph("only")
        graph.add(OpNode("a", "reshape"))
        graph.add(OpNode("b", "reshape"), deps=["a"])
        cleaned = passes.eliminate_dead_ops(graph)
        assert len(cleaned) >= 1


class TestOptimize:
    def test_real_model_gets_smaller_and_faster(self):
        graph = build_coatnet(COATNET["0"], batch=8)
        optimized = passes.optimize(graph)
        assert len(optimized) < len(graph)
        assert optimized.total_flops == pytest.approx(graph.total_flops)
        before = simulate(graph, TPU_V4).total_time_s
        after = simulate(optimized, TPU_V4).total_time_s
        assert after <= before

    def test_input_graph_untouched(self):
        graph = conv_act_chain()
        ops_before = len(graph)
        passes.optimize(graph)
        assert len(graph) == ops_before
        assert "act" in graph

    def test_fixed_point(self):
        once = passes.optimize(conv_act_chain())
        twice = passes.optimize(once)
        assert len(once) == len(twice)

    def test_validation(self):
        with pytest.raises(ValueError):
            passes.optimize(conv_act_chain(), max_iterations=0)


class TestClusterModel:
    def make(self):
        return ClusterModel(TPU_V4, lambda b: build_coatnet(COATNET["0"], batch=b))

    def test_allreduce_time(self):
        assert allreduce_time(1e9, 1, TPU_V4) == 0.0
        t2 = allreduce_time(1e9, 2, TPU_V4)
        t128 = allreduce_time(1e9, 128, TPU_V4)
        assert 0 < t2 < t128 < 2e9 / TPU_V4.ici_bandwidth * 1.01

    def test_allreduce_validation(self):
        with pytest.raises(ValueError):
            allreduce_time(1e9, 0, TPU_V4)

    def test_step_time_is_max_of_phases(self):
        step = self.make().step(8, global_batch=256)
        assert step.step_time_s == max(step.compute_time_s, step.allreduce_time_s)

    def test_throughput_scales_with_chips(self):
        model = self.make()
        small = model.step(1, 1024)
        large = model.step(32, 1024)
        assert large.examples_per_second > small.examples_per_second * 8

    def test_communication_bound_at_tiny_batches(self):
        """One example per chip on a weight-heavy model: the gradient
        all-reduce (2x param bytes over ICI) outlasts the compute."""

        def weight_heavy(batch):
            graph = OpGraph("wide")
            graph.add(ops.dense("fc", batch, 32768, 32768))
            return graph

        step = ClusterModel(TPU_V4, weight_heavy).step(128, global_batch=128)
        assert step.communication_bound

    def test_efficiency_near_one_at_healthy_batch(self):
        eff = self.make().scaling_efficiency((1, 8, 32), global_batch=2048)
        assert all(0.8 < e < 1.3 for e in eff)

    def test_validation(self):
        model = self.make()
        with pytest.raises(ValueError):
            model.step(0, 128)
        with pytest.raises(ValueError):
            model.step(128, 64)
        with pytest.raises(ValueError):
            model.scaling_efficiency((), 128)
