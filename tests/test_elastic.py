"""Once-for-all elastic supernets: substrate, schedule, artifact, workflow.

Covers the shared elastic substrate (:mod:`repro.supernet.elastic`), the
progressive-shrinking schedule, the versioned elastic artifact, the
policy-only batch release protocol, the two-phase engines
(:class:`ElasticTraining` / :class:`SpecializationSearch`), backend
bit-identity for both, and the tiny end-to-end
elastic-train -> specialize -> fleet smoke (the tier-1 half of the CI
contract; the speedup half lives in ``benchmarks/bench_elastic.py``).
"""

import json

import numpy as np
import pytest

from repro.core import ElasticTraining, SearchConfig, SpecializationSearch
from repro.data import (
    CtrTaskConfig,
    CtrTeacher,
    PipelineProtocolError,
    SequenceTaskConfig,
    SequenceTeacher,
    SingleStepPipeline,
)
from repro.hardware import PLATFORMS, platform
from repro.nn import Tensor
from repro.runtime import (
    CheckpointError,
    load_elastic_artifact,
    restore_elastic_supernet,
    save_elastic_artifact,
)
from repro.searchspace import (
    DlrmSpaceConfig,
    VitSpaceConfig,
    dlrm_search_space,
    vit_search_space,
)
from repro.supernet import (
    DlrmSuperNetwork,
    DlrmSupernetConfig,
    ElasticLayerStack,
    ElasticMlp,
    ShrinkPhase,
    ShrinkSchedule,
    TransformerSuperNetwork,
    TransformerSupernetConfig,
    elastic_rank,
    elastic_width,
)

NUM_TABLES = 2


def build_space():
    return dlrm_search_space(
        DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2)
    )


def build_training(steps=6, seed=0, schedule=None, backend=None, workers=None):
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed)
    )
    return ElasticTraining(
        build_space(),
        DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)),
        SingleStepPipeline(teacher.next_batch),
        schedule=schedule or ShrinkSchedule.default(steps),
        config=SearchConfig(
            steps=steps, num_cores=2, warmup_steps=0, seed=seed,
            backend=backend, workers=workers,
        ),
    )


# ----------------------------------------------------------------------
# Substrate primitives
# ----------------------------------------------------------------------
class TestElasticPrimitives:
    def test_elastic_width(self):
        assert elastic_width(64, 0, 8) == 64
        assert elastic_width(64, 2, 8) == 80
        assert elastic_width(64, -7, 8) == 8  # clamps to one quantum
        assert elastic_width(64, -7, 8, minimum=16) == 16

    def test_elastic_rank_quantized_and_clamped(self):
        assert elastic_rank(0.5, 64, 8) == 32
        assert elastic_rank(0.01, 64, 8) == 8  # floor at one quantum
        assert elastic_rank(2.0, 64, 8) == 64  # never above full rank
        assert elastic_rank(0.3, 10) == 3  # default quantum of 1

    def test_stack_active_prefix(self):
        stack = ElasticLayerStack([ElasticLayerStack.__new__(ElasticLayerStack)
                                   for _ in range(3)])
        assert stack.max_depth == 3 and len(stack) == 3
        assert stack.active(2) == stack.layers[:2]
        assert stack.active(3) == stack.layers

    @pytest.mark.parametrize("depth", [0, 4, -1])
    def test_stack_rejects_out_of_range_depth(self, depth):
        stack = ElasticLayerStack([object(), object(), object()])
        with pytest.raises(ValueError, match="active depth"):
            stack.active(depth)

    def test_stack_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one layer"):
            ElasticLayerStack([])

    def test_mlp_rejects_oversized_width(self):
        mlp = ElasticMlp(8, 16, 2, np.random.default_rng(0))
        x = Tensor(np.ones((4, 8)))
        with pytest.raises(ValueError, match="active_width"):
            mlp.forward(x, 24, 1, 1.0)

    def test_mlp_full_vs_lowrank_paths(self):
        mlp = ElasticMlp(8, 16, 2, np.random.default_rng(0), width_increment=4)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 8)))
        full = mlp.forward(x, 16, 2, 1.0)
        factored = mlp.forward(x, 16, 2, 0.25)
        assert full.shape == (4, 16) and factored.shape == (4, 16)
        assert not np.allclose(full.data, factored.data)

    def test_mlp_params_cover_both_paths(self):
        mlp = ElasticMlp(8, 16, 3, np.random.default_rng(0))
        both = len(mlp.full.parameters()) + len(mlp.lowrank.parameters())
        assert both > 0
        assert len(mlp.parameters()) == both


# ----------------------------------------------------------------------
# Progressive-shrinking schedule
# ----------------------------------------------------------------------
class TestShrinkSchedule:
    def test_default_boundaries(self):
        schedule = ShrinkSchedule.default(30)
        assert [p.start_step for p in schedule.phases] == [0, 10, 20]
        assert schedule.phase(0).name == "full"
        assert schedule.phase(9).name == "full"
        assert schedule.phase(10).name == "widths"
        assert schedule.phase(20).name == "depths"
        assert schedule.phase(10_000).name == "depths"

    def test_free_tags_cumulative(self):
        schedule = ShrinkSchedule.default(30)
        assert schedule.free_tags_at(0) == ()
        assert "width" in schedule.free_tags_at(10)
        assert "depth" not in schedule.free_tags_at(10)
        # Depth phase keeps the width-like freedoms.
        freed = schedule.free_tags_at(20)
        assert "width" in freed and "depth" in freed

    def test_space_at_pins_to_baseline(self):
        space = build_space()
        schedule = ShrinkSchedule.default(30)
        rng = np.random.default_rng(0)
        # Full phase: every managed decision is pinned to its baseline,
        # so every sample is the baseline architecture.
        restricted = schedule.space_at(0, space)
        baseline = space.default_architecture()
        for _ in range(5):
            arch = restricted.sample(rng)
            assert dict(arch) == dict(baseline)
        # Width phase: widths vary, depths stay pinned.
        widths = schedule.space_at(10, space)
        samples = [widths.sample(rng) for _ in range(20)]
        assert any(a["emb0/width_delta"] != 0 for a in samples)
        assert all(a["dense0/depth_delta"] == 0 for a in samples)
        # Depth phase: nothing pinned -> the original space comes back.
        assert schedule.space_at(20, space) is space

    def test_space_at_keeps_full_decision_set(self):
        """Pinned spaces keep every decision (constant rng consumption)."""
        space = build_space()
        restricted = ShrinkSchedule.default(30).space_at(0, space)
        assert [d.name for d in restricted.decisions] == [
            d.name for d in space.decisions
        ]

    def test_space_cache_reused_within_phase(self):
        space = build_space()
        schedule = ShrinkSchedule.default(30)
        assert schedule.space_at(1, space) is schedule.space_at(9, space)
        assert schedule.space_at(1, space) is not schedule.space_at(11, space)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one phase"):
            ShrinkSchedule(())
        with pytest.raises(ValueError, match="start at step 0"):
            ShrinkSchedule((ShrinkPhase("late", 5),))
        with pytest.raises(ValueError, match="strictly increasing"):
            ShrinkSchedule((ShrinkPhase("a", 0), ShrinkPhase("b", 0)))
        with pytest.raises(ValueError, match="unique"):
            ShrinkSchedule((ShrinkPhase("a", 0), ShrinkPhase("a", 3)))
        with pytest.raises(ValueError, match="non-empty"):
            ShrinkPhase("", 0)
        with pytest.raises(ValueError, match=">= 0"):
            ShrinkPhase("a", -1)
        with pytest.raises(ValueError, match="total_steps"):
            ShrinkSchedule.default(0)

    def test_payload_round_trip_and_identity(self):
        schedule = ShrinkSchedule.default(30)
        clone = ShrinkSchedule.from_payload(schedule.describe())
        assert clone == schedule
        assert clone.signature() == schedule.signature()
        json.loads(schedule.signature())  # canonical JSON
        other = ShrinkSchedule((ShrinkPhase("full", 0),))
        assert other != schedule
        assert "full@0" in repr(schedule)


# ----------------------------------------------------------------------
# Satellite 1: transformer on the stacked-scoring mixin
# ----------------------------------------------------------------------
class TestTransformerStackedScoring:
    def setup_method(self):
        self.space = vit_search_space(VitSpaceConfig(num_tfm_blocks=1))
        self.net = TransformerSuperNetwork(
            TransformerSupernetConfig(num_blocks=1)
        )
        teacher = SequenceTeacher(SequenceTaskConfig(seq_len=8, batch_size=16))
        self.batches = [teacher.next_batch() for _ in range(3)]

    def test_tape_compatible(self):
        assert TransformerSuperNetwork.tape_compatible is True

    def test_quality_many_matches_per_batch(self):
        arch = self.space.default_architecture()
        stacked = self.net.quality_many(
            arch,
            [b.inputs for b in self.batches],
            [b.labels for b in self.batches],
        )
        singles = [
            self.net.quality(arch, b.inputs, b.labels) for b in self.batches
        ]
        np.testing.assert_allclose(stacked, singles)

    def test_loss_many_matches_mean_of_losses(self):
        arch = self.space.default_architecture()
        stacked = self.net.loss_many(
            arch,
            [b.inputs for b in self.batches],
            [b.labels for b in self.batches],
        )
        singles = [
            float(self.net.loss(arch, b.inputs, b.labels).data)
            for b in self.batches
        ]
        np.testing.assert_allclose(float(stacked.data), np.mean(singles))

    def test_worker_spec_round_trips(self):
        kind, cls, cls_args, cls_kwargs = self.net.worker_spec()
        assert kind == "factory" and cls is TransformerSuperNetwork
        rebuilt = cls(*cls_args, **cls_kwargs)
        arch = self.space.default_architecture()
        batch = self.batches[0]
        rebuilt.load_state_dict(self.net.state_dict())
        assert rebuilt.quality(arch, batch.inputs, batch.labels) == (
            self.net.quality(arch, batch.inputs, batch.labels)
        )

    def test_blocks_are_elastic_stacks(self):
        assert all(
            isinstance(stack, ElasticLayerStack) for stack in self.net.blocks
        )


# ----------------------------------------------------------------------
# Policy-only batch release
# ----------------------------------------------------------------------
class TestPipelineRelease:
    def _pipeline(self):
        teacher = CtrTeacher(CtrTaskConfig(num_tables=2, batch_size=8, seed=0))
        return SingleStepPipeline(teacher.next_batch)

    def test_release_after_policy_use(self):
        pipeline = self._pipeline()
        (batch,) = pipeline.next_shard(1)
        pipeline.mark_policy_use(batch)
        pipeline.release(batch)
        # Released batches are out of the protocol entirely.
        with pytest.raises(PipelineProtocolError):
            pipeline.mark_weight_use(batch)

    def test_release_before_policy_use_rejected(self):
        pipeline = self._pipeline()
        (batch,) = pipeline.next_shard(1)
        with pytest.raises(PipelineProtocolError, match="policy"):
            pipeline.release(batch)

    def test_release_unknown_batch_rejected(self):
        pipeline = self._pipeline()
        teacher = CtrTeacher(CtrTaskConfig(num_tables=2, batch_size=8, seed=9))
        with pytest.raises(PipelineProtocolError):
            pipeline.release(teacher.next_batch())


# ----------------------------------------------------------------------
# Elastic artifact
# ----------------------------------------------------------------------
class TestElasticArtifact:
    def _save(self, tmp_path, seed=0):
        training = build_training(steps=2, seed=seed)
        training.run()
        space = build_space()
        return training, save_elastic_artifact(
            tmp_path / "artifact", training.supernet, space,
            training.schedule, trained_steps=2, seed=seed,
        )

    def test_round_trip(self, tmp_path):
        training, saved = self._save(tmp_path)
        loaded = load_elastic_artifact(tmp_path / "artifact")
        assert loaded.weights_sha == saved.weights_sha
        assert loaded.space_name == "dlrm"
        assert loaded.trained_steps == 2
        assert ShrinkSchedule.from_payload(loaded.schedule) == training.schedule

        fresh = DlrmSuperNetwork(
            DlrmSupernetConfig(num_tables=NUM_TABLES, seed=123)
        )
        restore_elastic_supernet(tmp_path / "artifact", fresh, build_space())
        trained = training.supernet.state_dict()
        for name, array in fresh.state_dict().items():
            np.testing.assert_array_equal(array, trained[name])

    def test_missing_artifact(self, tmp_path):
        with pytest.raises(CheckpointError, match="missing"):
            load_elastic_artifact(tmp_path / "nope")

    def test_corrupt_manifest(self, tmp_path):
        _, saved = self._save(tmp_path)
        (tmp_path / "artifact" / "ARTIFACT.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_elastic_artifact(tmp_path / "artifact")

    def test_wrong_space_rejected(self, tmp_path):
        self._save(tmp_path)
        other = dlrm_search_space(
            DlrmSpaceConfig(num_tables=4, num_dense_stacks=2)
        )
        supernet = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=4))
        with pytest.raises(CheckpointError, match="cannot specialize"):
            restore_elastic_supernet(tmp_path / "artifact", supernet, other)

    def test_resave_replaces_in_place(self, tmp_path):
        _, first = self._save(tmp_path, seed=0)
        training = build_training(steps=3, seed=1)
        training.run()
        second = save_elastic_artifact(
            tmp_path / "artifact", training.supernet, build_space(),
            training.schedule, trained_steps=3, seed=1,
        )
        assert second.weights_sha != first.weights_sha
        assert load_elastic_artifact(tmp_path / "artifact").trained_steps == 3


# ----------------------------------------------------------------------
# Two-phase engines
# ----------------------------------------------------------------------
class TestElasticTraining:
    def test_full_phase_trains_baseline_only(self):
        schedule = ShrinkSchedule.default(30)  # steps 0..5 all in "full"
        training = build_training(steps=4, schedule=schedule)
        result = training.run()
        baseline = list(training.space.indices_of(
            training.space.default_architecture()
        ))
        for record in result.history:
            for candidate in record.candidates:
                indices = training.space.indices_of(candidate.architecture)
                assert list(indices) == baseline

    def test_phases_widen_sampling(self):
        training = build_training(steps=9)  # boundaries at 3 and 6
        result = training.run()
        def varied(records, name):
            return any(
                c.architecture[name] != training.space.default_architecture()[name]
                for r in records for c in r.candidates
            )
        early, mid, late = result.history[:3], result.history[3:6], result.history[6:]
        assert not varied(early, "emb0/width_delta")
        assert varied(mid + late, "emb0/width_delta")
        assert not varied(early + mid, "dense0/depth_delta")

    def test_weights_actually_move(self):
        training = build_training(steps=3)
        before = {
            name: array.copy()
            for name, array in training.supernet.state_dict().items()
        }
        training.run()
        moved = any(
            not np.array_equal(array, before[name])
            for name, array in training.supernet.state_dict().items()
        )
        assert moved

    def test_reward_is_quality(self):
        result = build_training(steps=2).run()
        for record in result.history:
            for candidate in record.candidates:
                assert candidate.reward == candidate.quality

    def test_backend_bit_identity(self):
        serial = build_training(steps=4, backend="serial").run()
        threads = build_training(steps=4, backend="threads", workers=2).run()
        np.testing.assert_array_equal(serial.rewards(), threads.rewards())
        assert serial.batches_used == threads.batches_used


class TestSpecialization:
    @pytest.fixture()
    def artifact_dir(self, tmp_path):
        training = build_training(steps=4)
        training.run()
        save_elastic_artifact(
            tmp_path / "artifact", training.supernet, build_space(),
            training.schedule, trained_steps=4, seed=0,
        )
        return tmp_path / "artifact"

    def _build(self, artifact_dir, steps=4, backend=None, workers=None):
        from repro.service.jobs import specialization_builder

        space, factory = specialization_builder(
            artifact_dir, "tpu_v4", steps, 0,
            backend=backend, workers=workers,
        )
        return space, factory()

    def test_weights_frozen_during_search(self, artifact_dir):
        space, search = self._build(artifact_dir)
        before = {
            name: array.copy()
            for name, array in search.supernet.state_dict().items()
        }
        search.run()
        for name, array in search.supernet.state_dict().items():
            np.testing.assert_array_equal(array, before[name])

    def test_policy_actually_learns(self, artifact_dir):
        space, search = self._build(artifact_dir, steps=6)
        result = search.run()
        entropies = result.entropies()
        assert entropies[-1] < entropies[0]

    def test_no_outstanding_batches(self, artifact_dir):
        """Released batches: the policy-only engine leaks no bookkeeping."""
        space, search = self._build(artifact_dir)
        search.run()
        assert not search.pipeline._outstanding

    def test_backend_bit_identity(self, artifact_dir):
        _, serial = self._build(artifact_dir, backend="serial")
        _, threads = self._build(artifact_dir, backend="threads", workers=2)
        a, b = serial.run(), threads.run()
        np.testing.assert_array_equal(a.rewards(), b.rewards())
        assert list(a.final_architecture.values()) == list(
            b.final_architecture.values()
        )


# ----------------------------------------------------------------------
# Satellite 5 (tier-1 half): tiny end-to-end workflow through the CLI
# ----------------------------------------------------------------------
class TestEndToEndWorkflow:
    def test_train_specialize_fleet(self, tmp_path, capsys):
        from repro.cli import main

        art = tmp_path / "artifact"
        assert main([
            "elastic-train", "--steps", "4", "--seed", "0",
            "--artifact-dir", str(art),
        ]) == 0
        out = capsys.readouterr().out
        assert "artifact:" in out and "weights sha256" in out

        assert main([
            "specialize", "--artifact", str(art),
            "--platform", "v100", "--steps", "3", "--seed", "0",
        ]) == 0
        assert "gpu_v100" in capsys.readouterr().out

        assert main([
            "fleet", "--artifact", str(art), "--steps", "2", "--seed", "0",
        ]) == 0
        out = capsys.readouterr().out
        for name in PLATFORMS:
            assert name in out
        assert "Pareto front" in out

    def test_fleet_produces_entry_per_platform(self, tmp_path):
        from repro.service.jobs import fleet_sweep

        training = build_training(steps=3)
        training.run()
        art = tmp_path / "artifact"
        save_elastic_artifact(
            art, training.supernet, build_space(), training.schedule,
            trained_steps=3, seed=0,
        )
        entries = fleet_sweep(art, steps=2, seed=0)
        assert [e.platform for e in entries] == list(PLATFORMS)
        assert any(e.pareto for e in entries)
        for entry in entries:
            assert entry.serving_latency > 0
            assert entry.model_size > 0
            assert len(entry.indices) == len(build_space().decisions)

    def test_unknown_platform_enumerates_registry(self):
        with pytest.raises(ValueError) as err:
            platform("hal9000")
        message = str(err.value)
        for name in PLATFORMS:
            assert name in message
        assert "aliases" in message

    def test_platform_aliases(self):
        assert platform("V100").name == "gpu_v100"
        assert platform(" tpu_v4 ").name == "tpu_v4"
        assert platform("v4i").name == "tpu_v4i"
        cfg = platform("tpu_v4")
        assert platform(cfg) is cfg
