"""Pod-scale analysis: data-parallel scaling and DLRM sharding.

Two planning questions a deployment answers before a search even runs:

1. **How does the target model scale?**  Data-parallel step time on
   1..256 TPUv4 chips, with the ring all-reduce modelled explicitly —
   scaling efficiency collapses once the per-chip batch stops
   amortizing the gradient exchange (Table 2's models train on 128).
2. **How should DLRM embedding tables be sharded?**  The LPT-balanced
   plan across the slice, the resulting gather/all-to-all split, and
   the per-chip HBM check that makes model size a launch constraint.

Run:  python examples/cluster_scaling.py
"""

from repro.hardware import ClusterModel, TPU_V4
from repro.models import COATNET, baseline_production_dlrm
from repro.models.coatnet import build_graph
from repro.models.dlrm_sharding import embedding_step_time, plan_sharding

CHIP_COUNTS = (1, 4, 16, 64, 128, 256)
GLOBAL_BATCH = 4096


def coatnet_scaling():
    print(f"=== CoAtNet-2 data-parallel scaling (global batch {GLOBAL_BATCH}) ===")
    model = ClusterModel(TPU_V4, lambda b: build_graph(COATNET["2"], batch=b))
    print(f"{'chips':>6} {'per-chip':>9} {'compute ms':>11} {'allreduce ms':>13} "
          f"{'img/s':>10} {'bound':>9}")
    for chips in CHIP_COUNTS:
        step = model.step(chips, GLOBAL_BATCH)
        bound = "network" if step.communication_bound else "compute"
        print(f"{chips:>6} {step.per_chip_batch:>9} {step.compute_time_s*1e3:>11.1f} "
              f"{step.allreduce_time_s*1e3:>13.2f} {step.examples_per_second:>10.0f} "
              f"{bound:>9}")
    efficiency = model.scaling_efficiency(CHIP_COUNTS, GLOBAL_BATCH)
    print("scaling efficiency vs 1 chip:",
          "  ".join(f"{c}:{e:.2f}" for c, e in zip(CHIP_COUNTS, efficiency)))


def dlrm_sharding():
    spec = baseline_production_dlrm(num_tables=32)
    print(f"\n=== DLRM embedding sharding ({len(spec.tables)} tables, "
          f"batch {spec.batch}) ===")
    print(f"{'chips':>6} {'tables/chip':>12} {'imbalance':>10} {'gather ms':>10} "
          f"{'all-to-all ms':>14} {'fits HBM':>9}")
    for chips in (1, 2, 4, 8, 16):
        plan = plan_sharding(spec, chips)
        time = embedding_step_time(spec, plan, TPU_V4)
        sizes = sorted(len(a) for a in plan.assignments)
        print(f"{chips:>6} {f'{sizes[0]}..{sizes[-1]}':>12} "
              f"{plan.load_imbalance:>10.3f} {time.gather_time_s*1e3:>10.3f} "
              f"{time.all_to_all_time_s*1e3:>14.3f} {str(plan.fits_memory(TPU_V4)):>9}")


def main():
    coatnet_scaling()
    dlrm_sharding()


if __name__ == "__main__":
    main()
