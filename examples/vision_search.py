"""Vision search: the convolutional search space on the proxy super-network.

Searches the Table 5 CNN space (MBConv vs fused MBConv, kernel, stride,
expansion, activation, squeeze-and-excite, skip, depth/width deltas)
with the single-step algorithm.  Quality comes from the vision proxy
super-network trained on synthetic classification traffic; performance
comes from the hardware simulator, which prices each block choice on
TPUv4i — so the search sees the Figure 4 trade-off between MBConv
(fewer FLOPs, vector-unit-bound depthwise) and fused MBConv (more
FLOPs, matrix-unit-friendly) at every layer.

Run:  python examples/vision_search.py
"""

import numpy as np

from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    relu_reward,
)
from repro.data import SingleStepPipeline, VisionTaskConfig, VisionTeacher
from repro.graph import OpGraph
from repro.hardware import TPU_V4I, simulate
from repro.models import MbconvSpec, add_mbconv
from repro.searchspace import CnnSpaceConfig, cnn_search_space
from repro.supernet import VisionSuperNetwork, VisionSupernetConfig

NUM_BLOCKS = 2
RESOLUTION = 56
CHANNELS = 64


def block_latency_ms(arch):
    """Serving latency of the candidate's block stack on TPUv4i."""
    graph = OpGraph("candidate")
    last = None
    h = w = RESOLUTION
    for b in range(NUM_BLOCKS):
        depth = max(1, 2 + arch[f"block{b}/depth_delta"])
        for layer in range(depth):
            spec = MbconvSpec(
                block_type=arch[f"block{b}/type"],
                cin=CHANNELS,
                cout=CHANNELS,
                kernel=arch[f"block{b}/kernel"],
                stride=1,
                expansion=arch[f"block{b}/expansion"],
                se_ratio=arch[f"block{b}/se_ratio"],
            )
            last, h, w = add_mbconv(graph, f"b{b}l{layer}", spec, h, w, 8, last)
    return {"latency_ms": simulate(graph, TPU_V4I).total_time_s * 1e3}


def main():
    space = cnn_search_space(CnnSpaceConfig(num_blocks=NUM_BLOCKS, include_resolution=False))
    print(f"CNN space: {len(space)} decisions, 10^{space.log10_size():.1f} candidates "
          f"({302400}^{NUM_BLOCKS})")
    teacher = VisionTeacher(VisionTaskConfig(batch_size=64, seed=0))
    supernet = VisionSuperNetwork(VisionSupernetConfig(num_blocks=NUM_BLOCKS))
    baseline_latency = block_latency_ms(space.default_architecture())["latency_ms"]
    search = SingleStepSearch(
        space=space,
        supernet=supernet,
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward(
            [PerformanceObjective("latency_ms", baseline_latency, beta=-1.0)]
        ),
        performance_fn=block_latency_ms,
        config=SearchConfig(
            steps=120, num_cores=4, warmup_steps=15, policy_lr=0.2,
            policy_entropy_coef=0.05, seed=0,
        ),
    )
    result = search.run()
    best = result.final_architecture
    print(f"\nsearch consumed {result.batches_used} fresh batches")
    print("best architecture:")
    for name, value in sorted(best.as_dict().items()):
        print(f"  {name} = {value}")
    latency = block_latency_ms(best)["latency_ms"]
    print(f"\nlatency: {latency:.3f} ms (baseline {baseline_latency:.3f} ms, "
          f"target {baseline_latency:.3f} ms)")
    held_out = teacher.next_batch()
    quality = supernet.quality(best, held_out.inputs, held_out.labels)
    print(f"held-out quality: {quality:.3f}")


if __name__ == "__main__":
    main()
