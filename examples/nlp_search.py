"""NLP search: the transformer space applied to a language-model proxy.

"Our transformer search space can be used in isolation to search for
pure VIT or transformer based NLP models" (Appendix A).  This example
does exactly that: the same Table 5 transformer decisions, but the
super-network predicts a label *per position* (next-token style) on a
bigram-teacher sequence task, so cross-position mixing — attention —
is load-bearing.  Sequence pooling is constrained out of the space
(it would misalign positions with labels), the ViT lowering prices
candidates on TPUv4, and the ReLU reward holds a step-time budget.

Run:  python examples/nlp_search.py
"""

from dataclasses import replace

from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    relu_reward,
)
from repro.data import LmTaskConfig, LmTeacher, SingleStepPipeline
from repro.models import VitBaseline, VitTimingHarness
from repro.searchspace import SearchSpace, VitSpaceConfig, vit_search_space
from repro.supernet import TransformerSuperNetwork, TransformerSupernetConfig


def lm_search_space() -> SearchSpace:
    """The transformer space with seq_pooling constrained to False."""
    base = vit_search_space(VitSpaceConfig(num_tfm_blocks=1))
    return base.frozen({"tfm0/seq_pooling": False}, name="nlp_transformer")


def main():
    space = lm_search_space()
    print(f"NLP transformer space: {len(space)} decisions, "
          f"{space.cardinality():,} candidates")
    teacher = LmTeacher(LmTaskConfig(seq_len=8, batch_size=64, seed=0))
    supernet = TransformerSuperNetwork(
        TransformerSupernetConfig(num_blocks=1, base_depth=2, task="lm")
    )
    harness = VitTimingHarness(VitBaseline(num_blocks=1, base_depth=4))
    time_budget = 0.5e-3
    cache = {}

    def perf_fn(arch):
        if arch not in cache:
            cache[arch] = {"train_step_time": harness.simulate(arch)[0]}
        return cache[arch]

    search = SingleStepSearch(
        space=space,
        supernet=supernet,
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward(
            [PerformanceObjective("train_step_time", time_budget, beta=-2.0)]
        ),
        performance_fn=perf_fn,
        config=SearchConfig(
            steps=200, num_cores=4, warmup_steps=25, policy_lr=0.15,
            policy_entropy_coef=0.05, seed=0,
        ),
    )
    result = search.run()
    best = result.final_architecture
    print(f"\nsearch consumed {result.batches_used} fresh batches")
    print("best architecture:")
    for name, value in sorted(best.as_dict().items()):
        print(f"  {name} = {value}")
    time = perf_fn(best)["train_step_time"]
    print(f"\nTPUv4 step time: {time*1e3:.3f} ms (budget {time_budget*1e3:.3f} ms)")
    held_out = teacher.next_batch()
    quality = supernet.quality(best, held_out.inputs, held_out.labels)
    print(f"held-out per-position accuracy: {quality:.3f} (chance 0.25)")


if __name__ == "__main__":
    main()
