"""Quickstart: end-to-end H2O-NAS on a small DLRM in under a minute.

Wires together the full colored path of the paper's Figure 1:
a DLRM search space (Table 5), the hybrid weight-sharing super-network
(Figure 3), an in-memory production-traffic pipeline (each example used
once, policy-before-weights), the single-sided ReLU multi-objective
reward (Equation 1), and the massively parallel single-step search
(Figure 2, right).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import H2ONas, PerformanceObjective, SearchConfig
from repro.data import CtrTaskConfig, CtrTeacher
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig

NUM_TABLES = 2


def capacity_step_time(arch):
    """A toy performance signal: step time grows with model capacity.

    Real deployments plug in the two-phase performance model here (see
    examples/dlrm_production_search.py).
    """
    cost = 1.0
    for table in range(NUM_TABLES):
        cost += 0.05 * arch[f"emb{table}/width_delta"]
        cost += 0.15 * (arch[f"emb{table}/vocab_scale"] - 1.0)
    for stack in range(2):
        cost += 0.04 * arch[f"dense{stack}/width_delta"]
        cost += 0.05 * arch[f"dense{stack}/depth_delta"]
    return {"step_time": max(0.1, cost)}


def main():
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    print(f"search space: {space.name}, {len(space)} decisions, "
          f"10^{space.log10_size():.1f} architectures")
    teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=64, seed=0))
    nas = H2ONas(
        space=space,
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES)),
        batch_source=teacher.next_batch,
        performance_fn=capacity_step_time,
        objectives=[PerformanceObjective("step_time", target=1.0, beta=-0.5)],
        reward_kind="relu",
        config=SearchConfig(steps=80, num_cores=4, warmup_steps=10, seed=0),
    )
    result = nas.search()
    best = result.final_architecture
    print(f"\nsearch used {result.batches_used} fresh batches "
          f"(one per core per step; none reused)")
    print(f"policy entropy: {result.entropies()[0]:.2f} -> {result.entropies()[-1]:.2f}")
    print("\nbest architecture:")
    for name, value in sorted(best.as_dict().items()):
        print(f"  {name} = {value}")
    held_out = teacher.next_batch()
    print(f"\nheld-out quality: {nas.evaluate(best, held_out):.3f}")
    print(f"predicted step time: {capacity_step_time(best)['step_time']:.2f} "
          f"(target 1.00, baseline 1.00)")


if __name__ == "__main__":
    main()
