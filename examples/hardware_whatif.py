"""Hardware what-if: which resources do the models actually lean on?

The paper's conclusion pitches H2O-NAS for hardware/model co-design:
chips are committed years ahead, so architects want each workload's
bottleneck map and the payoff of candidate resource upgrades.  This
example prints the step-time elasticity of every major resource
(matrix unit, vector unit, HBM, CMEM, interconnect) for a CoAtNet, an
EfficientNet, and a production DLRM — then evaluates a hypothetical
next-generation chip.

Run:  python examples/hardware_whatif.py
"""

from repro.hardware import TPU_V4, sensitivity_profile, simulate
from repro.models import COATNET, EFFICIENTNET_X, baseline_production_dlrm
from repro.models import coatnet, dlrm, efficientnet

RESOURCES = ("matrix_unit", "vector_unit", "hbm_bandwidth", "cmem_bandwidth", "interconnect")


def workloads():
    return {
        "coatnet_2 (batch 64)": coatnet.build_graph(COATNET["2"], batch=64),
        "efficientnet_b4 (batch 64)": efficientnet.build_graph(
            EFFICIENTNET_X["b4"], batch=64
        ),
        "production dlrm": dlrm.build_graph(baseline_production_dlrm(num_tables=16)),
    }


def bottleneck_maps():
    print("=== step-time elasticity per resource (2x scaling) ===")
    header = f"{'workload':>28}" + "".join(f"{r:>16}" for r in RESOURCES)
    print(header)
    for name, graph in workloads().items():
        profile = sensitivity_profile(graph, TPU_V4, RESOURCES)
        row = f"{name:>28}" + "".join(
            f"{profile[r].elasticity:>16.2f}" for r in RESOURCES
        )
        print(row)
    print("(1.0 = the model rides this resource; 0.0 = slack)\n")


def future_chip():
    print("=== hypothetical next-gen chip: 1.6x MXU, 2x HBM, same ICI ===")
    next_gen = TPU_V4.with_overrides(
        peak_matrix_tflops=TPU_V4.peak_matrix_tflops * 1.6,
        hbm_bandwidth_gbs=TPU_V4.hbm_bandwidth_gbs * 2.0,
    )
    for name, graph in workloads().items():
        now = simulate(graph, TPU_V4).total_time_s
        future = simulate(graph, next_gen).total_time_s
        print(f"{name:>28}: {now*1e3:8.2f} ms -> {future*1e3:8.2f} ms "
              f"({now/future:.2f}x)")
    print("\nmodels will be re-searched once the chip lands — the paper's "
          "'late binding' of model to hardware architecture")


def main():
    bottleneck_maps()
    future_chip()


if __name__ == "__main__":
    main()
