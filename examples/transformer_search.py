"""Transformer search: the ViT space end to end.

Searches the Table 5 transformer space — attention hidden size,
low-rank fraction, activation (including squared ReLU), funnel-style
sequence pooling, the Primer depthwise-convolution option, and layer
count — with quality from a real (scaled-down) attention super-network
trained on synthetic sequence traffic and performance priced per
candidate by the TPUv4 simulator through the ViT lowering.

Run:  python examples/transformer_search.py
"""

import numpy as np

from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    relu_reward,
)
from repro.data import SequenceTaskConfig, SequenceTeacher, SingleStepPipeline
from repro.models import VitBaseline, VitTimingHarness
from repro.searchspace import VitSpaceConfig, vit_search_space
from repro.supernet import TransformerSuperNetwork, TransformerSupernetConfig


def main():
    space = vit_search_space(VitSpaceConfig(num_tfm_blocks=1))
    print(f"transformer space: {len(space)} decisions, "
          f"{space.cardinality():,} candidates (17,920 per block)")
    teacher = SequenceTeacher(SequenceTaskConfig(seq_len=8, batch_size=64, seed=0))
    supernet = TransformerSuperNetwork(
        TransformerSupernetConfig(num_blocks=1, base_depth=2)
    )
    harness = VitTimingHarness(VitBaseline(num_blocks=1, base_depth=4))
    # Launch budget: an absolute per-step time the deployment allows.
    time_budget = 1.0e-3
    cache = {}

    def perf_fn(arch):
        if arch not in cache:
            cache[arch] = {"train_step_time": harness.simulate(arch)[0]}
        return cache[arch]

    search = SingleStepSearch(
        space=space,
        supernet=supernet,
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward(
            [PerformanceObjective("train_step_time", time_budget, beta=-2.0)]
        ),
        performance_fn=perf_fn,
        config=SearchConfig(
            steps=250, num_cores=4, warmup_steps=25, policy_lr=0.15,
            policy_entropy_coef=0.05, seed=0,
        ),
    )
    result = search.run()
    best = result.final_architecture
    print(f"\nsearch consumed {result.batches_used} fresh batches; "
          f"entropy {result.entropies()[0]:.2f} -> {result.entropies()[-1]:.2f}")
    print("best architecture:")
    for name, value in sorted(best.as_dict().items()):
        print(f"  {name} = {value}")
    time = perf_fn(best)["train_step_time"]
    print(f"\nTPUv4 step time: {time*1e3:.3f} ms (budget {time_budget*1e3:.3f} ms)")
    held_out = teacher.next_batch()
    print(f"held-out quality: {supernet.quality(best, held_out.inputs, held_out.labels):.3f}")


if __name__ == "__main__":
    main()
