"""Performance-model workflow: pretrain on simulation, finetune on hardware.

A compact walkthrough of Section 6.2 / Table 1: why neither data source
alone is enough, and how the two-phase recipe combines them.

* The simulator is cheap (CPU-only) but systematically optimistic.
* Hardware measurements are faithful but scarce (we take only 20).
* Pre-training learns the non-convex shape of the performance
  landscape from the simulator; fine-tuning snaps that shape onto
  reality with a handful of measurements.

Run:  python examples/perfmodel_workflow.py
"""

import numpy as np

from repro.models import baseline_production_dlrm
from repro.models.timing import DlrmTimingHarness
from repro.perfmodel import (
    ArchitectureEncoder,
    PerformanceModel,
    TwoPhaseConfig,
    TwoPhaseTrainer,
)
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

NUM_TABLES = 4


def main():
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    harness = DlrmTimingHarness(baseline_production_dlrm(num_tables=NUM_TABLES), seed=0)

    # Show the systematic simulator-vs-hardware gap on a few candidates.
    print("=== the gap the model must learn ===")
    rng = np.random.default_rng(0)
    print(f"{'candidate':>10} {'simulator ms':>13} {'hardware ms':>12} {'gap':>7}")
    for i in range(5):
        arch = space.sample(rng)
        sim = harness.simulate(arch)[0]
        hw = harness.measure_deterministic(arch)[0]
        print(f"{i:>10} {sim*1e3:13.3f} {hw*1e3:12.3f} {hw/sim - 1:+7.1%}")

    model = PerformanceModel(
        ArchitectureEncoder(space),
        hidden_sizes=(256, 256),
        size_fn=harness.model_size,
        seed=0,
    )
    trainer = TwoPhaseTrainer(
        model,
        space,
        simulate_fn=harness.simulate,
        measure_fn=harness.measure,
        config=TwoPhaseConfig(pretrain_epochs=40, finetune_epochs=200, finetune_lr=5e-5),
        seed=0,
    )

    print("\n=== phase 1: pretrain on simulator samples ===")
    report = trainer.pretrain(4000)
    print(f"{report.num_samples} samples, in-sample NRMSE "
          f"{report.nrmse_train_head:.2%} (train head) / "
          f"{report.nrmse_serve_head:.2%} (serve head)")
    on_hw = trainer.evaluate(150, harness.measure_deterministic)
    print(f"...but against hardware: {on_hw[0]:.1%} / {on_hw[1]:.1%} NRMSE")

    print("\n=== phase 2: finetune on 20 hardware measurements ===")
    trainer.finetune(20)
    on_hw = trainer.evaluate(150, harness.measure_deterministic)
    print(f"after finetuning: {on_hw[0]:.1%} / {on_hw[1]:.1%} NRMSE vs hardware")

    print("\n=== the model in search position ===")
    arch = space.sample(np.random.default_rng(7))
    metrics = model.predict(arch)
    truth = harness.measure_deterministic(arch)
    print(f"prediction: train {metrics['train_step_time']*1e3:.3f} ms, "
          f"serve {metrics['serving_latency']*1e3:.3f} ms, "
          f"size {metrics['model_size']/1e9:.2f} GB (analytical head)")
    print(f"hardware:   train {truth[0]*1e3:.3f} ms, serve {truth[1]*1e3:.3f} ms")


if __name__ == "__main__":
    main()
