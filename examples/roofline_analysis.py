"""Hardware analysis walkthrough: rooflines, fusion, and CoAtNet-H.

Reproduces the paper's hardware reasoning interactively:

* Figure 4 — place MBConv and fused MBConv on the TPUv4i roofline and
  watch the latency crossover move with channel depth;
* Figure 7 — compare CoAtNet-5 against the searched CoAtNet-H5 on
  TPUv4: the speedup comes from halving the compute load and cutting
  off-chip traffic, not from a higher compute rate;
* Figure 9 — the power/energy consequence: the faster model does not
  draw more power.

Run:  python examples/roofline_analysis.py
"""

from repro.hardware import TPU_V4, TPU_V4I, power_report, roofline_point, simulate
from repro.models import COATNET, COATNET_H, MbconvSpec, single_block_graph
from repro.models.coatnet import build_graph


def figure4():
    print("=== Figure 4: MBConv vs fused MBConv on TPUv4i ===")
    print(f"{'block':>12} {'intensity':>10} {'TFLOP/s':>8} {'latency ms':>11}")
    for depth in (32, 64, 128, 256):
        for block_type in ("mbconv", "fused_mbconv"):
            spec = MbconvSpec(block_type, depth, depth, se_ratio=0.0)
            graph = single_block_graph(spec, resolution=56, batch=64)
            result = simulate(graph, TPU_V4I)
            name = f"{'F-MBC' if block_type == 'fused_mbconv' else 'MBC'}({depth})"
            intensity = graph.total_flops / graph.total_bytes
            print(f"{name:>12} {intensity:10.1f} {result.achieved_tflops:8.1f} "
                  f"{result.total_time_s * 1e3:11.3f}")
    print("note the crossover: fusion wins at small depth, loses at large depth\n")


def figure7_and_9():
    print("=== Figures 7 & 9: CoAtNet-5 vs CoAtNet-H5 on TPUv4 ===")
    results = {}
    for label, config in (("CoAtNet-5", COATNET["5"]), ("CoAtNet-H5", COATNET_H["5"])):
        result = simulate(build_graph(config, batch=64), TPU_V4)
        power = power_report(result, TPU_V4)
        results[label] = (result, power)
        print(f"{label}: step {result.total_time_s*1e3:7.1f} ms | "
              f"{result.achieved_tflops:5.0f} TFLOP/s | "
              f"{result.total_flops/1e12:6.1f} TFLOPs | "
              f"HBM {result.hbm_bytes/1e9:6.1f} GB | "
              f"{power.power_w:5.1f} W | {power.energy_j:6.1f} J")
    base, searched = results["CoAtNet-5"], results["CoAtNet-H5"]
    print(f"\nspeedup {base[0].total_time_s / searched[0].total_time_s:.2f}x, "
          f"compute load {searched[0].total_flops / base[0].total_flops:.2f}x, "
          f"HBM traffic {searched[0].hbm_bytes / base[0].hbm_bytes:.2f}x, "
          f"power {searched[1].power_w / base[1].power_w:.2f}x, "
          f"energy {searched[1].energy_j / base[1].energy_j:.2f}x")
    print("the faster model draws no extra power: the win comes from doing less\n"
          "work and keeping it on-chip, not from pushing utilization higher")


def roofline_tour():
    print("\n=== roofline placement of individual ops ===")
    graph = build_graph(COATNET["5"], batch=64)
    interesting = ["stem", "c1l0/depthwise", "t0l0/qkv", "t0l0/qk"]
    for name in interesting:
        op = graph.node(name)
        point = roofline_point(op, TPU_V4)
        bound = "compute-bound" if point.compute_bound else "memory-bound"
        print(f"{name:>16}: intensity {point.operational_intensity:8.1f} FLOPs/B, "
              f"attainable {point.attained_tflops:6.1f} TFLOP/s ({bound})")


def main():
    figure4()
    figure7_and_9()
    roofline_tour()


if __name__ == "__main__":
    main()
