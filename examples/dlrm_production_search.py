"""Production-style DLRM search with the two-phase performance model.

This is the paper's full deployment recipe (Sections 4-6) end to end:

1. build a production-scale DLRM baseline and its search space;
2. pre-train the MLP performance model on simulator samples, then
   fine-tune it on ~20 hardware-testbed measurements (Table 1);
3. run the single-step RL search with the ReLU multi-objective reward —
   training step time as the primary objective, serving memory as the
   secondary — using the performance model for millisecond-latency
   performance signals;
4. report the searched model against the baseline, Figure 8 style.

Run:  python examples/dlrm_production_search.py   (takes a few minutes)
"""

import numpy as np

from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    relu_reward,
)
from repro.data import NullSource, SingleStepPipeline
from repro.hardware import TPU_V4, simulate
from repro.models import baseline_production_dlrm, pipeline_times
from repro.models.dlrm import apply_architecture, build_graph
from repro.models.timing import DlrmTimingHarness
from repro.perfmodel import (
    ArchitectureEncoder,
    PerformanceModel,
    TwoPhaseConfig,
    TwoPhaseTrainer,
)
from repro.quality import DlrmQualityModel
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

NUM_TABLES = 4
QUALITY_WEIGHT = 4.0


def main():
    baseline = baseline_production_dlrm(num_tables=NUM_TABLES)
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    harness = DlrmTimingHarness(baseline, seed=0)
    quality_model = DlrmQualityModel(baseline)

    print("=== phase 1+2: two-phase performance model (Table 1) ===")
    perf_model = PerformanceModel(
        ArchitectureEncoder(space),
        hidden_sizes=(256, 256),
        size_fn=harness.model_size,
        seed=0,
    )
    trainer = TwoPhaseTrainer(
        perf_model,
        space,
        simulate_fn=harness.simulate,
        measure_fn=harness.measure,
        config=TwoPhaseConfig(pretrain_epochs=40, finetune_epochs=200, finetune_lr=5e-5),
        seed=0,
    )
    report = trainer.pretrain(4000)
    print(f"pretrained on {report.num_samples} simulator samples "
          f"(in-sample NRMSE {report.nrmse_train_head:.2%})")
    before = trainer.evaluate(100, harness.measure_deterministic)
    trainer.finetune(20)
    after = trainer.evaluate(100, harness.measure_deterministic)
    print(f"NRMSE vs hardware: {before[0]:.1%} pretrained -> {after[0]:.1%} finetuned")

    print("\n=== phase 3: single-step search with the ReLU reward ===")
    base_metrics = perf_model.predict(space.default_architecture())
    objectives = [
        PerformanceObjective(
            "train_step_time", base_metrics["train_step_time"] * 0.9, beta=-6.0
        ),
        PerformanceObjective("model_size", base_metrics["model_size"] * 2.0, beta=-6.0),
    ]

    def quality_fn(arch):
        return QUALITY_WEIGHT * quality_model.quality(apply_architecture(baseline, arch))

    search = SingleStepSearch(
        space=space,
        supernet=SurrogateSuperNetwork(quality_fn, noise_sigma=0.01, seed=0),
        pipeline=SingleStepPipeline(NullSource().next_batch),
        reward_fn=relu_reward(objectives),
        # The model itself is a BatchPerformanceFn: cache misses within a
        # shard are priced in one vectorized forward pass.
        performance_fn=perf_model,
        config=SearchConfig(
            steps=250, num_cores=8, warmup_steps=10, policy_lr=0.12,
            policy_entropy_coef=0.12, record_candidates=False, seed=0,
        ),
    )
    result = search.run()
    best = result.final_architecture

    print("\n=== results (Figure 8 style) ===")
    for label, spec in (
        ("baseline", baseline),
        ("searched", apply_architecture(baseline, best, name="dlrm_searched")),
    ):
        times = pipeline_times(simulate(build_graph(spec), TPU_V4))
        quality = quality_model.quality(spec)
        print(f"{label:>9}: embedding {times['embedding']*1e3:6.2f} ms | "
              f"dnn {times['dnn']*1e3:6.2f} ms | step {times['step']*1e3:6.2f} ms | "
              f"quality {quality:.3f}")
    print("\nsearched decisions (non-baseline only):")
    default = space.default_architecture()
    for name in sorted(best):
        if best[name] != default[name]:
            print(f"  {name}: {default[name]} -> {best[name]}")


if __name__ == "__main__":
    main()
