"""Serving optimization: throughput under a P99 latency target.

The paper's serving metric (Section 6.2.2) is "serving throughput
under P99 target latency".  This example measures the batch-size /
tail-latency trade-off for two DLRMs on a TPUv4i testbed and shows how
the searched DLRM-H converts its smaller step time into more queries
per second under the same latency SLO.

Run:  python examples/serving_optimization.py
"""

from dataclasses import replace

from repro.hardware import HardwareTestbed, TPU_V4I, optimize_serving_throughput
from repro.models import baseline_production_dlrm, dlrm_h
from repro.models.dlrm import build_graph

TARGET_LATENCY_S = 0.010  # 10 ms P99 SLO
BATCH_CANDIDATES = (1, 4, 16, 64, 256, 1024)


def serving_builder(spec):
    def build(batch):
        serving_spec = replace(
            spec, name=f"{spec.name}_b{batch}", batch=batch, distributed=False
        )
        return build_graph(serving_spec)

    return build


def main():
    baseline = baseline_production_dlrm(num_tables=8)
    searched = dlrm_h(baseline)
    print(f"P99 latency target: {TARGET_LATENCY_S*1e3:.0f} ms on {TPU_V4I.name}\n")
    reports = {}
    for spec in (baseline, searched):
        testbed = HardwareTestbed(TPU_V4I, seed=7)
        report = optimize_serving_throughput(
            testbed,
            serving_builder(spec),
            target_latency_s=TARGET_LATENCY_S,
            batch_candidates=BATCH_CANDIDATES,
            num_measurements=40,
        )
        reports[spec.name] = report
        print(f"--- {spec.name} ---")
        for point in report.points:
            marker = " <= SLO" if point.p99_latency_s <= TARGET_LATENCY_S else "  > SLO"
            print(f"  batch {point.batch_size:>5}: p50 {point.p50_latency_s*1e3:7.3f} ms, "
                  f"p99 {point.p99_latency_s*1e3:7.3f} ms{marker}")
        if report.feasible:
            print(f"  -> serve at batch {report.best.batch_size}: "
                  f"{report.throughput_under_target:,.0f} queries/s\n")
        else:
            print("  -> no feasible batch size\n")
    base_qps = reports[baseline.name].throughput_under_target
    h_qps = reports[searched.name].throughput_under_target
    if base_qps > 0:
        print(f"DLRM-H serves {h_qps / base_qps:.2f}x the baseline QPS "
              f"under the same P99 target")


if __name__ == "__main__":
    main()
