"""Ablation: RL-based vs gradient-based one-shot search (Section 3).

"The RL-based search algorithms use significantly fewer resources than
gradient-based search algorithms, because RL-based approaches only
need to activate the sub-network under consideration in each step,
while gradient-based approaches have to compute gradients for all
sub-networks."

Both algorithms search the same mixture super-network on the same
synthetic vision task.  We compare (a) the quality of the derived
architecture, (b) the *structural* per-step cost — sub-network branch
evaluations — and (c) measured wall-clock per step; and we confirm the
second structural difference: the gradient-based search needs the
train/validation split (bilevel), while the RL single-step search runs
on one fresh stream.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table
from repro.core import (
    DartsConfig,
    DartsSearch,
    SearchConfig,
    SingleStepSearch,
    relu_reward,
)
from repro.data import (
    SingleStepPipeline,
    TwoStreamPipeline,
    VisionTaskConfig,
    VisionTeacher,
)
from repro.supernet import (
    MixtureSuperNetwork,
    MixtureSupernetConfig,
    mixture_search_space,
)

from .common import emit, emit_json

STEPS = 150
NET_CONFIG = MixtureSupernetConfig(num_layers=2, num_features=16, num_classes=4)


def held_out_quality(net, arch, teacher):
    """Fresh, never-trained-on batches from the SAME planted teacher."""
    batches = [teacher.next_batch() for _ in range(8)]
    return float(np.mean([net.quality(arch, b.inputs, b.labels) for b in batches]))


def run_rl():
    net = MixtureSuperNetwork(NET_CONFIG)
    space = mixture_search_space(NET_CONFIG)
    teacher = VisionTeacher(VisionTaskConfig(batch_size=64, seed=1))
    pipeline = SingleStepPipeline(teacher.next_batch)
    search = SingleStepSearch(
        space=space,
        supernet=net,
        pipeline=pipeline,
        reward_fn=relu_reward([]),
        performance_fn=lambda arch: {},
        config=SearchConfig(
            steps=STEPS, num_cores=2, warmup_steps=15, policy_lr=0.2,
            policy_entropy_coef=0.05, record_candidates=False, seed=0,
        ),
    )
    start = time.perf_counter()
    result = search.run()
    elapsed = time.perf_counter() - start
    return {
        "quality": held_out_quality(net, result.final_architecture, teacher),
        "seconds_per_step": elapsed / STEPS,
        "branches_per_step": 2,  # one candidate per core, two cores
        "data_reuses": 0,
        "needs_split": False,
    }


def run_darts():
    net = MixtureSuperNetwork(NET_CONFIG)
    teacher = VisionTeacher(VisionTaskConfig(batch_size=64, seed=1))
    pipeline = TwoStreamPipeline(teacher.next_batch, train_batches=40, valid_batches=20)
    search = DartsSearch(
        net, pipeline, DartsConfig(steps=STEPS, warmup_steps=15)
    )
    start = time.perf_counter()
    result = search.run()
    elapsed = time.perf_counter() - start
    return {
        "quality": held_out_quality(net, result.final_architecture, teacher),
        "seconds_per_step": elapsed / STEPS,
        "branches_per_step": result.branch_evaluations_per_step,
        "data_reuses": pipeline.train_reuses + pipeline.valid_reuses,
        "needs_split": True,
    }


def run():
    stats = {"rl_single_step": run_rl(), "gradient_darts": run_darts()}
    table = format_table(
        ["algorithm", "held-out quality", "branch evals/step", "ms/step", "data reuses", "needs split"],
        [
            [
                name,
                f"{s['quality']:.3f}",
                s["branches_per_step"],
                f"{s['seconds_per_step'] * 1e3:.1f}",
                s["data_reuses"],
                s["needs_split"],
            ]
            for name, s in stats.items()
        ],
    )
    emit("ablation_gradient", table)
    emit_json("ablation_gradient", {"stats": stats})
    return stats


def test_ablation_gradient(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rl, darts = stats["rl_single_step"], stats["gradient_darts"]
    # Both find architectures well above chance (0.25).
    assert rl["quality"] > 0.45
    assert darts["quality"] > 0.45
    # The structural cost claim: the gradient method evaluates every
    # branch per step; the RL method only the sampled candidates.
    assert darts["branches_per_step"] > rl["branches_per_step"] * 3
    # The bilevel method needs and reuses a finite split; single-step
    # streams fresh data with zero reuse.
    assert darts["needs_split"] and darts["data_reuses"] >= 2
    assert not rl["needs_split"] and rl["data_reuses"] == 0
