"""Checkpoint-overhead benchmark: snapshot/restore cost vs step time.

Periodic checkpointing only pays for itself if a snapshot costs a
small fraction of the work it protects.  This benchmark runs the DLRM
search on production-regime batches, times (a) the bare steps, (b) a
full ``CheckpointStore.save`` of the complete search state, and (c) a
verified ``load`` + restore, and asserts the contract the
fault-tolerant runtime is designed to: at the default cadence
(``checkpoint_every=10``) snapshotting costs **< 10%** of per-step
wall clock.  Snapshot cost is fixed in the state size while step cost
scales with traffic, so the margin only improves at larger scale.
"""

from __future__ import annotations

import tempfile
import time

import pytest

from repro.analysis import format_table
from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    relu_reward,
)
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline
from repro.runtime import (
    CheckpointStore,
    restore_search,
    search_checkpoint_payload,
)
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig

from .common import emit, emit_json

pytestmark = pytest.mark.slow

NUM_TABLES = 2
STEPS = 40
CORES = 8
BATCH = 512  # production-traffic regime: per-step compute dominates state size
CHECKPOINT_EVERY = 10
MAX_OVERHEAD = 0.10


def performance_fn(arch):
    cost = 1.0
    for t in range(NUM_TABLES):
        cost += 0.05 * arch[f"emb{t}/width_delta"]
        cost += 0.15 * (arch[f"emb{t}/vocab_scale"] - 1.0)
    for s in range(2):
        cost += 0.04 * arch[f"dense{s}/width_delta"]
    return {"step_time": max(0.1, cost)}


def build_search(seed=0):
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2)
    )
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=NUM_TABLES, batch_size=BATCH, seed=seed)
    )
    return SingleStepSearch(
        space=space,
        supernet=DlrmSuperNetwork(
            DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)
        ),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, beta=-0.5)]),
        performance_fn=performance_fn,
        config=SearchConfig(
            steps=STEPS, num_cores=CORES, warmup_steps=5, seed=seed
        ),
    )


def test_bench_checkpoint_overhead():
    search = build_search()
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(tmp, keep_last=2)
        history = []
        step_s = 0.0
        save_s = 0.0
        for step in range(STEPS):
            started = time.perf_counter()
            history.append(search.step(step))
            step_s += time.perf_counter() - started
            started = time.perf_counter()
            store.save(step + 1, search_checkpoint_payload(search, step + 1, history))
            save_s += time.perf_counter() - started
        # Restore cost: verified load into a fresh search instance.
        restored = build_search()
        started = time.perf_counter()
        payload = store.load(store.latest())
        restore_search(restored, payload)
        restore_s = time.perf_counter() - started

    per_step_ms = 1e3 * step_s / STEPS
    per_save_ms = 1e3 * save_s / STEPS
    raw_overhead = save_s / step_s
    # Snapshot overhead as experienced per search step at the default
    # cadence: one save amortized over checkpoint_every steps.
    overhead = raw_overhead / CHECKPOINT_EVERY
    rows = [
        ["search step", f"{per_step_ms:.2f}"],
        ["checkpoint save (full state)", f"{per_save_ms:.2f}"],
        ["checkpoint load + restore", f"{1e3 * restore_s:.2f}"],
        ["save vs step (every step)", f"{raw_overhead:.1%}"],
        [f"per-step overhead (every={CHECKPOINT_EVERY})", f"{overhead:.1%}"],
    ]
    emit("bench_checkpoint", format_table(["operation", "ms"], rows))
    emit_json(
        "bench_checkpoint",
        {
            "steps": STEPS,
            "num_cores": CORES,
            "batch_size": BATCH,
            "checkpoint_every": CHECKPOINT_EVERY,
            "step_ms": per_step_ms,
            "save_ms": per_save_ms,
            "restore_ms": 1e3 * restore_s,
            "save_overhead_fraction": raw_overhead,
            "per_step_overhead_fraction": overhead,
            "max_overhead_fraction": MAX_OVERHEAD,
        },
    )
    # The acceptance contract: snapshotting at the default cadence costs
    # well under a tenth of the search's wall clock.
    assert overhead < MAX_OVERHEAD, (
        f"checkpointing costs {overhead:.1%} of per-step wall clock at "
        f"checkpoint_every={CHECKPOINT_EVERY} (contract: < {MAX_OVERHEAD:.0%})"
    )


if __name__ == "__main__":
    test_bench_checkpoint_overhead()
