"""Serial vs. thread-pool execution backends on latency-bound shards.

At hyperscale the per-candidate work inside a search step is dominated
by waiting on something other than the host interpreter: a supernet
forward on an attached accelerator, a cost-model service round-trip, a
device-table lookup.  The thread-pool backend exists to overlap those
waits across the shard's candidates.  This benchmark replays a
single-step search whose scoring and pricing carry a small synthetic
device latency per candidate and measures end-to-end step wall-clock on
``SerialBackend`` vs. ``ThreadPoolBackend`` — asserting the threaded
run is >= 1.5x faster *and* bit-identical in its search trajectory.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    ThreadPoolBackend,
    relu_reward,
)
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

from .common import emit, emit_json

pytestmark = pytest.mark.slow

NUM_TABLES = 3
STEPS = 24
CORES = 8
WORKERS = 4
SCORE_LATENCY = 2e-3  # one supernet forward on the attached device
PRICE_LATENCY = 1e-3  # one cost-model service round-trip


class LatencyBoundSupernet(SurrogateSuperNetwork):
    """Surrogate whose per-candidate scoring waits on a device."""

    def _quality_split(self, arch, inputs, labels, rng):
        time.sleep(SCORE_LATENCY)
        return super()._quality_split(arch, inputs, labels, rng)


class LatencyBoundCost:
    """Cost lookup with a service round-trip; safe to fan out."""

    parallel_safe = True

    def __call__(self, arch):
        time.sleep(PRICE_LATENCY)
        cost = 1.0
        for t in range(NUM_TABLES):
            cost += 0.05 * arch[f"emb{t}/width_delta"]
        return {"step_time": max(0.1, cost)}


def build_search(backend, steps=STEPS, cores=CORES, seed=0):
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2)
    )
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed)
    )
    return SingleStepSearch(
        space=space,
        supernet=LatencyBoundSupernet(
            lambda a: 1.0 - 0.01 * a["emb0/width_delta"],
            noise_sigma=0.05,
            seed=seed,
            split_noise=True,
        ),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=LatencyBoundCost(),
        config=SearchConfig(
            steps=steps,
            num_cores=cores,
            warmup_steps=4,
            record_candidates=False,
            seed=seed,
            backend=backend,
        ),
    )


def _timed_run(backend, steps, cores):
    search = build_search(backend, steps=steps, cores=cores)
    started = time.perf_counter()
    result = search.run()
    return result, time.perf_counter() - started


def run(steps=STEPS, cores=CORES, workers=WORKERS):
    serial_result, serial_seconds = _timed_run("serial", steps, cores)
    threaded_result, threaded_seconds = _timed_run(
        ThreadPoolBackend(workers=workers), steps, cores
    )

    # Parallel execution must not change the search: bit-identical
    # trajectory is the backend contract, not a tolerance check.
    np.testing.assert_array_equal(
        serial_result.rewards(), threaded_result.rewards()
    )
    np.testing.assert_array_equal(
        serial_result.entropies(), threaded_result.entropies()
    )

    payload = {
        "steps": steps,
        "cores": cores,
        "workers": workers,
        "score_latency_s": SCORE_LATENCY,
        "price_latency_s": PRICE_LATENCY,
        "serial_seconds": serial_seconds,
        "threaded_seconds": threaded_seconds,
        "serial_step_ms": 1e3 * serial_seconds / steps,
        "threaded_step_ms": 1e3 * threaded_seconds / steps,
        "speedup": serial_seconds / max(threaded_seconds, 1e-12),
        "trajectories_identical": True,
    }
    table = format_table(
        ["backend", "total (s)", "per step (ms)", "speedup"],
        [
            ["serial", f"{serial_seconds:.2f}", f"{payload['serial_step_ms']:.1f}", "1.0x"],
            [
                f"threads x{workers}",
                f"{threaded_seconds:.2f}",
                f"{payload['threaded_step_ms']:.1f}",
                f"{payload['speedup']:.1f}x",
            ],
        ],
    )
    emit("backends", table)
    emit_json("backends", payload)
    return payload


def test_backends(benchmark):
    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    # Acceptance: >= 1.5x step wall-clock from overlapping the shard's
    # per-candidate device waits across workers.
    assert payload["speedup"] >= 1.5, f"speedup only {payload['speedup']:.2f}x"
