"""Execution-backend benchmarks: latency-bound threads, CPU-bound processes.

At hyperscale the per-candidate work inside a search step is dominated
by one of two things.  When it's *waiting* — a supernet forward on an
attached accelerator, a cost-model service round-trip — the thread-pool
backend overlaps the waits and the GIL never matters; the first
benchmark replays a single-step search with synthetic device latency
and asserts ``ThreadPoolBackend`` is >= 1.5x faster than serial.  When
it's *host compute* — pure-Python scoring holding the GIL — threads
serialize and only the process-pool backend scales with cores; the
second benchmark replays a CPU-bound search and asserts
``ProcessPoolBackend`` is >= 2x faster than serial at 4 workers (and
that threads, run for contrast, are capped).  Both assert bit-identical
search trajectories: parallelism changes wall-clock, never numerics.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    PerformanceObjective,
    ProcessPoolBackend,
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    ThreadPoolBackend,
    relu_reward,
)
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

from .common import emit, emit_json

pytestmark = pytest.mark.slow

NUM_TABLES = 3
STEPS = 24
CORES = 8
WORKERS = 4
SCORE_LATENCY = 2e-3  # one supernet forward on the attached device
PRICE_LATENCY = 1e-3  # one cost-model service round-trip

PROCESS_STEPS = 12
#: pure-Python loop iterations per candidate score — ~2-3 ms of
#: GIL-holding host compute, the regime threads cannot parallelize
SCORE_SPIN = 120_000


class LatencyBoundSupernet(SurrogateSuperNetwork):
    """Surrogate whose per-candidate scoring waits on a device."""

    def _quality_split(self, arch, inputs, labels, rng):
        time.sleep(SCORE_LATENCY)
        return super()._quality_split(arch, inputs, labels, rng)


class LatencyBoundCost:
    """Cost lookup with a service round-trip; safe to fan out."""

    parallel_safe = True

    def __call__(self, arch):
        time.sleep(PRICE_LATENCY)
        cost = 1.0
        for t in range(NUM_TABLES):
            cost += 0.05 * arch[f"emb{t}/width_delta"]
        return {"step_time": max(0.1, cost)}


def build_search(backend, steps=STEPS, cores=CORES, seed=0):
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2)
    )
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed)
    )
    return SingleStepSearch(
        space=space,
        supernet=LatencyBoundSupernet(
            lambda a: 1.0 - 0.01 * a["emb0/width_delta"],
            noise_sigma=0.05,
            seed=seed,
            split_noise=True,
        ),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=LatencyBoundCost(),
        config=SearchConfig(
            steps=steps,
            num_cores=cores,
            warmup_steps=4,
            record_candidates=False,
            seed=seed,
            backend=backend,
        ),
    )


def _timed_run(backend, steps, cores):
    search = build_search(backend, steps=steps, cores=cores)
    started = time.perf_counter()
    result = search.run()
    return result, time.perf_counter() - started


def run(steps=STEPS, cores=CORES, workers=WORKERS):
    serial_result, serial_seconds = _timed_run("serial", steps, cores)
    threaded_result, threaded_seconds = _timed_run(
        ThreadPoolBackend(workers=workers), steps, cores
    )

    # Parallel execution must not change the search: bit-identical
    # trajectory is the backend contract, not a tolerance check.
    np.testing.assert_array_equal(
        serial_result.rewards(), threaded_result.rewards()
    )
    np.testing.assert_array_equal(
        serial_result.entropies(), threaded_result.entropies()
    )

    payload = {
        "steps": steps,
        "cores": cores,
        "workers": workers,
        "score_latency_s": SCORE_LATENCY,
        "price_latency_s": PRICE_LATENCY,
        "serial_seconds": serial_seconds,
        "threaded_seconds": threaded_seconds,
        "serial_step_ms": 1e3 * serial_seconds / steps,
        "threaded_step_ms": 1e3 * threaded_seconds / steps,
        "speedup": serial_seconds / max(threaded_seconds, 1e-12),
        "trajectories_identical": True,
    }
    table = format_table(
        ["backend", "total (s)", "per step (ms)", "speedup"],
        [
            ["serial", f"{serial_seconds:.2f}", f"{payload['serial_step_ms']:.1f}", "1.0x"],
            [
                f"threads x{workers}",
                f"{threaded_seconds:.2f}",
                f"{payload['threaded_step_ms']:.1f}",
                f"{payload['speedup']:.1f}x",
            ],
        ],
    )
    emit("backends", table)
    emit_json("backends", payload)
    return payload


def test_backends(benchmark):
    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    # Acceptance: >= 1.5x step wall-clock from overlapping the shard's
    # per-candidate device waits across workers.
    assert payload["speedup"] >= 1.5, f"speedup only {payload['speedup']:.2f}x"


# ----------------------------------------------------------------------
# CPU-bound scoring: the process backend's regime
# ----------------------------------------------------------------------
def _cpu_quality(arch):
    return 1.0 - 0.01 * arch["emb0/width_delta"]


def _flat_cost(arch):
    cost = 1.0
    for t in range(NUM_TABLES):
        cost += 0.05 * arch[f"emb{t}/width_delta"]
    return {"step_time": max(0.1, cost)}


class CpuBoundSupernet(SurrogateSuperNetwork):
    """Surrogate whose per-candidate scoring burns host CPU under the GIL.

    Module-level (and built on a module-level quality fn) so the whole
    object pickles — process workers rehydrate it from the spec blob.
    """

    def _quality_split(self, arch, inputs, labels, rng):
        acc = 0.0
        for i in range(SCORE_SPIN):
            acc += i & 7
        # acc folds in at weight zero: identical scores, real work.
        return super()._quality_split(arch, inputs, labels, rng) + 0.0 * acc


def build_cpu_search(backend, steps=PROCESS_STEPS, cores=CORES, seed=0):
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2)
    )
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed)
    )
    return SingleStepSearch(
        space=space,
        supernet=CpuBoundSupernet(
            _cpu_quality, noise_sigma=0.05, seed=seed, split_noise=True
        ),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=_flat_cost,
        config=SearchConfig(
            steps=steps,
            num_cores=cores,
            warmup_steps=2,
            record_candidates=False,
            seed=seed,
            backend=backend,
        ),
    )


def _timed_cpu_run(backend, steps, cores):
    search = build_cpu_search(backend, steps=steps, cores=cores)
    started = time.perf_counter()
    result = search.run()
    return result, time.perf_counter() - started


def run_processes(steps=PROCESS_STEPS, cores=CORES, workers=WORKERS):
    serial_result, serial_seconds = _timed_cpu_run("serial", steps, cores)
    threaded_result, threaded_seconds = _timed_cpu_run(
        ThreadPoolBackend(workers=workers), steps, cores
    )
    process_backend = ProcessPoolBackend(workers=workers)
    process_result, process_seconds = _timed_cpu_run(
        process_backend, steps, cores
    )

    for other in (threaded_result, process_result):
        np.testing.assert_array_equal(serial_result.rewards(), other.rewards())
        np.testing.assert_array_equal(
            serial_result.entropies(), other.entropies()
        )

    payload = {
        "steps": steps,
        "cores": cores,
        "workers": workers,
        "score_spin": SCORE_SPIN,
        "host_cpus": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "threaded_seconds": threaded_seconds,
        "process_seconds": process_seconds,
        "serial_step_ms": 1e3 * serial_seconds / steps,
        "process_step_ms": 1e3 * process_seconds / steps,
        "threads_speedup": serial_seconds / max(threaded_seconds, 1e-12),
        "speedup": serial_seconds / max(process_seconds, 1e-12),
        "trajectories_identical": True,
    }
    table = format_table(
        ["backend", "total (s)", "per step (ms)", "speedup"],
        [
            [
                "serial",
                f"{serial_seconds:.2f}",
                f"{payload['serial_step_ms']:.1f}",
                "1.0x",
            ],
            [
                f"threads x{workers}",
                f"{threaded_seconds:.2f}",
                f"{1e3 * threaded_seconds / steps:.1f}",
                f"{payload['threads_speedup']:.1f}x",
            ],
            [
                f"processes x{workers}",
                f"{process_seconds:.2f}",
                f"{payload['process_step_ms']:.1f}",
                f"{payload['speedup']:.1f}x",
            ],
        ],
    )
    emit("backends_processes", table)
    emit_json("backends_processes", payload)
    return payload


def test_process_backend(benchmark):
    if (os.cpu_count() or 1) < WORKERS:
        pytest.skip(
            f"CPU-bound speedup contract needs >= {WORKERS} host cores, "
            f"have {os.cpu_count()}"
        )
    payload = benchmark.pedantic(run_processes, rounds=1, iterations=1)
    # Acceptance: >= 2x step wall-clock at 4 workers on GIL-holding
    # scoring shards — the work threads cannot parallelize.
    assert payload["speedup"] >= 2.0, f"speedup only {payload['speedup']:.2f}x"


# ----------------------------------------------------------------------
# Latency-bound scoring across hosts: the distributed backend's regime
# ----------------------------------------------------------------------
class RemoteDeviceSupernet(SurrogateSuperNetwork):
    """Surrogate whose per-candidate scoring waits on a remote device.

    Unlike :class:`LatencyBoundSupernet` this one pickles — it is
    module-level and built on the module-level quality fn — so the
    distributed workers can rehydrate it from the broadcast spec.
    """

    def _quality_split(self, arch, inputs, labels, rng):
        time.sleep(SCORE_LATENCY)
        return super()._quality_split(arch, inputs, labels, rng)


def build_distributed_search(backend, steps=STEPS, cores=CORES, seed=0):
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2)
    )
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed)
    )
    search = SingleStepSearch(
        space=space,
        supernet=RemoteDeviceSupernet(
            _cpu_quality, noise_sigma=0.05, seed=seed, split_noise=True
        ),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=_flat_cost,
        config=SearchConfig(
            steps=steps,
            num_cores=cores,
            warmup_steps=4,
            record_candidates=False,
            seed=seed,
            backend=backend,
        ),
    )
    return space, search


def _timed_distributed_run(backend, steps, cores):
    space, search = build_distributed_search(backend, steps=steps, cores=cores)
    started = time.perf_counter()
    result = search.run()
    return space, result, time.perf_counter() - started


def run_distributed(steps=STEPS, cores=CORES, workers=WORKERS):
    from repro.core import DistributedBackend
    from repro.service import result_payload

    space, serial_result, serial_seconds = _timed_distributed_run(
        "serial", steps, cores
    )
    dist_backend = DistributedBackend(workers=workers)
    _, dist_result, dist_seconds = _timed_distributed_run(
        dist_backend, steps, cores
    )
    losses = dist_backend.worker_losses
    hosts = dist_backend.host_count

    # Crossing host boundaries must not change the search: the full
    # fingerprinted results payload — the service's bit-identity
    # currency — has to match, not just the reward trajectory.
    serial_payload = result_payload(space, serial_result)
    dist_payload = result_payload(space, dist_result)
    assert dist_payload["fingerprint"] == serial_payload["fingerprint"]

    payload = {
        "steps": steps,
        "cores": cores,
        "workers": workers,
        "hosts": hosts,
        "worker_losses": losses,
        "score_latency_s": SCORE_LATENCY,
        "serial_seconds": serial_seconds,
        "distributed_seconds": dist_seconds,
        "serial_step_ms": 1e3 * serial_seconds / steps,
        "distributed_step_ms": 1e3 * dist_seconds / steps,
        "speedup": serial_seconds / max(dist_seconds, 1e-12),
        "fingerprint": dist_payload["fingerprint"],
        "fingerprints_identical": True,
    }
    table = format_table(
        ["backend", "total (s)", "per step (ms)", "speedup"],
        [
            [
                "serial",
                f"{serial_seconds:.2f}",
                f"{payload['serial_step_ms']:.1f}",
                "1.0x",
            ],
            [
                f"distributed x{workers}",
                f"{dist_seconds:.2f}",
                f"{payload['distributed_step_ms']:.1f}",
                f"{payload['speedup']:.1f}x",
            ],
        ],
    )
    emit("backends_distributed", table)
    emit_json("backends_distributed", payload)
    return payload


def test_distributed_backend(benchmark):
    payload = benchmark.pedantic(run_distributed, rounds=1, iterations=1)
    # Acceptance: >= 1.5x step wall-clock from fanning the shard's
    # per-candidate device waits across 4 loopback worker hosts, with
    # the results fingerprint bit-identical to the serial run.
    assert payload["speedup"] >= 1.5, f"speedup only {payload['speedup']:.2f}x"
    assert payload["worker_losses"] == 0
