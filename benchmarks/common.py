"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation section: it computes the experiment, prints the same
rows/series the paper reports, writes them under
``benchmarks/results/``, and asserts the *shape* claims (who wins, by
roughly what factor, where crossovers fall).  Absolute numbers come
from the analytical simulator, not the authors' testbed, and are not
expected to match.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Mapping

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def jsonable(value: Any) -> Any:
    """Recursively coerce benchmark results into JSON-safe values.

    Handles the shapes ``run()`` functions actually return: dataclasses,
    numpy scalars/arrays, tuples/sets, and mappings with non-string
    keys.  Anything else unrecognized falls back to ``str`` so a payload
    never aborts the benchmark that computed it.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item) and getattr(value, "ndim", None) in (None, 0):
        return value.item()  # numpy scalar
    if hasattr(value, "tolist") and callable(value.tolist):
        return jsonable(value.tolist())  # numpy array
    return str(value)


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n"
    output = banner + text + "\n"
    print(output)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(output)
    return output


def emit_json(name: str, payload: Mapping[str, Any]) -> pathlib.Path:
    """Persist a machine-readable result under benchmarks/results/.

    Written next to the text block of the same name so dashboards and
    regression checks can diff runs without parsing tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    payload = jsonable(dict(payload))
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=float) + "\n")
    return path
