"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation section: it computes the experiment, prints the same
rows/series the paper reports, writes them under
``benchmarks/results/``, and asserts the *shape* claims (who wins, by
roughly what factor, where crossovers fall).  Absolute numbers come
from the analytical simulator, not the authors' testbed, and are not
expected to match.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n"
    output = banner + text + "\n"
    print(output)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(output)
    return output


def emit_json(name: str, payload: Mapping[str, Any]) -> pathlib.Path:
    """Persist a machine-readable result under benchmarks/results/.

    Written next to the text block of the same name so dashboards and
    regression checks can diff runs without parsing tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(dict(payload), indent=2, sort_keys=True, default=float) + "\n")
    return path
