"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation section: it computes the experiment, prints the same
rows/series the paper reports, writes them under
``benchmarks/results/``, and asserts the *shape* claims (who wins, by
roughly what factor, where crossovers fall).  Absolute numbers come
from the analytical simulator, not the authors' testbed, and are not
expected to match.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n"
    output = banner + text + "\n"
    print(output)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(output)
    return output
