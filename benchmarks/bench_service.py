"""Service scheduling benchmark: concurrency without interference.

The daemon's value proposition is multiplexing N tenants' searches
over one process without serializing them end-to-end and without
perturbing any of them.  This benchmark checks both halves of that:

* **Overlap contract:** four concurrent tiny jobs finish within 1.5x
  the wall clock of the *slowest of them run alone* on the same daemon.
  The jobs are step_sleep-dominated (modeling the attached-device waits
  of a real search step), which is exactly the regime the scheduler's
  thread-per-job + shared-pool design must overlap.
* **Isolation contract:** every job's results payload — fingerprint
  included — is bit-identical to a one-shot run of the same spec
  (``one_shot_payload``, the same reference the durability tests use).
  Concurrency changes wall-clock, never numerics.
"""

from __future__ import annotations

import tempfile
import threading
import time

import pytest

from repro.analysis import format_table
from repro.service import (
    DaemonConfig,
    JobSpec,
    SchedulerConfig,
    ServiceClient,
    ServiceDaemon,
    one_shot_payload,
)

from .common import emit, emit_json

pytestmark = pytest.mark.slow

JOBS = 4
STEPS = 8
STEP_SLEEP_S = 0.25
CHECKPOINT_EVERY = 4
MAX_SLOWDOWN = 1.5


def job_spec(seed: int) -> dict:
    return {
        "steps": STEPS,
        "seed": seed,
        "step_sleep_s": STEP_SLEEP_S,
        "checkpoint_every": CHECKPOINT_EVERY,
    }


def start_daemon(spool):
    daemon = ServiceDaemon(
        DaemonConfig(
            spool=spool,
            scheduler=SchedulerConfig(
                max_concurrent=JOBS,
                tenant_max_running=JOBS,
                poll_interval_s=0.005,
                backend="serial",
            ),
            accept_timeout_s=0.05,
        )
    )
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    client = ServiceClient(daemon.socket_path, timeout=60.0)
    client.wait_ready(timeout=30.0)
    return daemon, thread, client


def run():
    spool = tempfile.mkdtemp(prefix="bench-service-")
    daemon, thread, client = start_daemon(spool)
    try:
        references = {
            seed: one_shot_payload(JobSpec(**job_spec(seed)), backend="serial")
            for seed in range(JOBS)
        }

        # Solo baseline: each job alone on the daemon (queue, checkpoint
        # and telemetry overhead included, nothing to contend with).
        solo_seconds = {}
        for seed in range(JOBS):
            started = time.perf_counter()
            record = client.submit("solo", job_spec(seed))
            payload = client.wait_results(record["job_id"], timeout=120.0)
            solo_seconds[seed] = time.perf_counter() - started
            assert payload == references[seed], f"solo seed {seed} diverged"

        # Concurrent: all four at once, one tenant each.
        started = time.perf_counter()
        submitted = {
            seed: client.submit(f"tenant-{seed}", job_spec(seed))["job_id"]
            for seed in range(JOBS)
        }
        identical = True
        for seed, job_id in submitted.items():
            payload = client.wait_results(job_id, timeout=120.0)
            identical = identical and payload == references[seed]
        concurrent_seconds = time.perf_counter() - started
    finally:
        client.drain()
        thread.join(timeout=60.0)

    slowest_solo = max(solo_seconds.values())
    payload = {
        "jobs": JOBS,
        "steps": STEPS,
        "step_sleep_s": STEP_SLEEP_S,
        "solo_seconds": {str(k): v for k, v in solo_seconds.items()},
        "slowest_solo_seconds": slowest_solo,
        "concurrent_seconds": concurrent_seconds,
        "slowdown": concurrent_seconds / max(slowest_solo, 1e-12),
        "max_slowdown": MAX_SLOWDOWN,
        "results_identical": identical,
    }
    table = format_table(
        ["run", "wall (s)", "vs slowest solo"],
        [
            ["slowest solo", f"{slowest_solo:.2f}", "1.0x"],
            [
                f"{JOBS} concurrent",
                f"{concurrent_seconds:.2f}",
                f"{payload['slowdown']:.2f}x",
            ],
        ],
    )
    emit("service", table)
    emit_json("service", payload)
    return payload


def test_service_concurrency(benchmark):
    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    assert payload["results_identical"], "concurrency changed job results"
    # Acceptance: scheduling four jobs together costs <= 1.5x the
    # slowest job's solo wall clock — overlap, not serialization.
    assert payload["slowdown"] <= MAX_SLOWDOWN, (
        f"4 concurrent jobs took {payload['slowdown']:.2f}x the slowest "
        f"solo run (limit {MAX_SLOWDOWN}x)"
    )
