"""Figure 6: Pareto fronts of CoAtNet-H vs CoAtNet at three data scales.

For each pretraining-dataset size (SD = ImageNet-1K, MD = ImageNet-21K,
LD = JFT-300M) the figure plots ImageNet top-1 accuracy against TPUv4
training throughput for both families.  The claim reproduced: the
CoAtNet-H family improves the Pareto front — ~1.5-2x better training
throughput at neutral accuracy — at every data scale.
"""

from __future__ import annotations

from repro.analysis import ascii_scatter, format_table, geometric_mean, pareto_front
from repro.hardware import TPU_V4, simulate
from repro.models import COATNET, COATNET_H
from repro.models.coatnet import build_graph
from repro.quality import coatnet_quality

from .common import emit, emit_json

BATCH = 64
DATASETS = ("small", "medium", "large")


def family_points(family, dataset):
    points = {}
    for idx, config in family.items():
        graph = build_graph(config, batch=BATCH)
        throughput = BATCH / simulate(graph, TPU_V4).total_time_s
        points[idx] = (coatnet_quality(config, dataset), throughput)
    return points


def run():
    results = {}
    lines = []
    for dataset in DATASETS:
        base = family_points(COATNET, dataset)
        searched = family_points(COATNET_H, dataset)
        results[dataset] = {"base": base, "h": searched}
        for idx in COATNET:
            lines.append(
                [
                    dataset,
                    f"H-{idx} vs C-H-{idx}",
                    f"{base[idx][0]:.1f}",
                    f"{searched[idx][0]:.1f}",
                    f"{base[idx][1]:.0f}",
                    f"{searched[idx][1]:.0f}",
                    f"{searched[idx][1] / base[idx][1]:.2f}x",
                ]
            )
    table = format_table(
        ["dataset", "pair", "acc base", "acc H", "img/s base", "img/s H", "speedup"],
        lines,
    )
    table += "\n\nlarge-data (JFT) Pareto plane:\n" + ascii_scatter(
        {
            "coatnet": list(results["large"]["base"].values()),
            "h2o (coatnet-h)": list(results["large"]["h"].values()),
        },
        x_label="top-1 accuracy",
        y_label="img/s/chip",
    )
    emit("fig6_vit_pareto", table)
    emit_json("fig6_vit_pareto", {"results": results})
    return results


def test_fig6_vit_pareto(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for dataset in DATASETS:
        base = results[dataset]["base"]
        searched = results[dataset]["h"]
        speedups = [searched[i][1] / base[i][1] for i in base]
        # Family-wide training-throughput gain around the paper's 1.54x.
        assert 1.3 < geometric_mean(speedups) < 2.6
        # Neutral accuracy per member.
        for idx in base:
            assert abs(searched[idx][0] - base[idx][0]) < 0.6
        # The combined Pareto front is dominated by H members.
        combined = [("base", idx, *base[idx]) for idx in base] + [
            ("h", idx, *searched[idx]) for idx in searched
        ]
        front = pareto_front(
            combined, quality=lambda p: p[2], cost=lambda p: -p[3]
        )
        h_on_front = sum(1 for p in front if p[0] == "h")
        assert h_on_front >= len(front) * 0.5
