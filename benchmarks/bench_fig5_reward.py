"""Figure 5: ReLU reward vs absolute-value reward for production DLRM NAS.

Follows the paper's protocol (Section 6.1, footnote 3): searches run
with *two* performance objectives — training step time, with targets
swept from 0.75x to 1.5x of the baseline step time, and model (serving
memory) size, targeted at the baseline.  Quality comes from the DLRM
surrogate, performance from the hardware simulator.

Claims reproduced:
* Figure 5a — the ReLU reward's quality/step-time Pareto front
  dominates the absolute reward's (compared by hypervolume);
* Figure 5b — bucketized by quality, ReLU models have equal or better
  mean step time;
* Figure 5c — bucketized by step time, ReLU models have equal or
  better mean quality;
* the ReLU-searched models are smaller on average (paper: 1.6%).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ascii_scatter, bucketize, format_table, hypervolume_2d, pareto_front
from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    absolute_reward,
    relu_reward,
)
from repro.data import NullSource, SingleStepPipeline
from repro.models import baseline_production_dlrm
from repro.models.dlrm import apply_architecture
from repro.models.timing import DlrmTimingHarness
from repro.quality import DlrmQualityModel
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

from .common import emit, emit_json

NUM_TABLES = 4
TIME_TARGETS = (0.75, 0.9, 1.0, 1.25, 1.5)
SEEDS = (0,)
STEPS = 400
CORES = 8
#: Quality is weighted up against the (unit-scale) penalty terms so the
#: RL signal balances a ~1-point quality range against fractional
#: overshoots; the paper tunes the equivalent balance through beta.
QUALITY_WEIGHT = 2.0


def build_problem():
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    baseline = baseline_production_dlrm(num_tables=NUM_TABLES)
    harness = DlrmTimingHarness(baseline, seed=0)
    quality_model = DlrmQualityModel(baseline)
    base_metrics = harness.metrics_from_simulator(space.default_architecture())
    cache = {}

    def perf_fn(arch):
        if arch not in cache:
            cache[arch] = harness.metrics_from_simulator(arch)
        return cache[arch]

    def quality_fn(arch):
        return quality_model.quality(apply_architecture(baseline, arch))

    return space, perf_fn, quality_fn, base_metrics


def run_search(space, perf_fn, quality_fn, reward_factory, base_metrics, target, seed):
    objectives = [
        PerformanceObjective(
            "train_step_time", base_metrics["train_step_time"] * target, beta=-3.0
        ),
        PerformanceObjective("model_size", base_metrics["model_size"], beta=-3.0),
    ]
    search = SingleStepSearch(
        space=space,
        supernet=SurrogateSuperNetwork(
            lambda arch: QUALITY_WEIGHT * quality_fn(arch),
            noise_sigma=0.01,
            seed=seed,
        ),
        pipeline=SingleStepPipeline(NullSource().next_batch),
        reward_fn=reward_factory(objectives),
        performance_fn=perf_fn,
        config=SearchConfig(
            steps=STEPS,
            num_cores=CORES,
            warmup_steps=10,
            policy_lr=0.12,
            policy_entropy_coef=0.15,
            record_candidates=False,
            seed=seed,
        ),
    )
    final = search.run().final_architecture
    metrics = perf_fn(final)
    return {
        "quality": quality_fn(final),
        "step_time": metrics["train_step_time"],
        "model_size": metrics["model_size"],
        "target": target,
    }


def run():
    space, perf_fn, quality_fn, base_metrics = build_problem()
    searched = {"relu": [], "absolute": []}
    for kind, factory in (("relu", relu_reward), ("absolute", absolute_reward)):
        for target in TIME_TARGETS:
            for seed in SEEDS:
                searched[kind].append(
                    run_search(
                        space, perf_fn, quality_fn, factory, base_metrics, target, seed
                    )
                )
    reference = (
        min(m["quality"] for ms in searched.values() for m in ms) - 0.05,
        max(m["step_time"] for ms in searched.values() for m in ms) * 1.1,
    )
    stats = {}
    for kind, models in searched.items():
        front = pareto_front(
            models, quality=lambda m: m["quality"], cost=lambda m: m["step_time"]
        )
        stats[kind] = {
            "hypervolume": hypervolume_2d(
                [(m["quality"], m["step_time"]) for m in front], reference
            ),
            "mean_size": float(np.mean([m["model_size"] for m in models])),
            "models": models,
            "front": front,
        }
    lines = [
        [
            kind,
            m["target"],
            f"{m['quality']:.3f}",
            f"{m['step_time'] * 1e3:.2f}",
            f"{m['model_size'] / 1e9:.2f}",
        ]
        for kind, s in stats.items()
        for m in s["models"]
    ]
    table = format_table(
        ["reward", "time target (x base)", "quality", "step time (ms)", "size (GB)"], lines
    )
    table += (
        f"\n\nhypervolume: relu={stats['relu']['hypervolume']:.4g}"
        f" absolute={stats['absolute']['hypervolume']:.4g}"
        f"\nmean serving size: relu={stats['relu']['mean_size'] / 1e9:.3f} GB"
        f" absolute={stats['absolute']['mean_size'] / 1e9:.3f} GB"
        f" (paper: relu 1.6% smaller)"
    )
    # Figure 5b/5c bucketized views.
    all_models = stats["relu"]["models"] + stats["absolute"]["models"]
    for axis, value, name in (
        (lambda m: m["quality"], lambda m: m["step_time"], "fig5b (by quality -> mean step time)"),
        (lambda m: m["step_time"], lambda m: m["quality"], "fig5c (by step time -> mean quality)"),
    ):
        table += f"\n\n{name}:"
        for kind in ("relu", "absolute"):
            buckets = bucketize(stats[kind]["models"], key=axis, value=value, num_buckets=4)
            table += f"\n  {kind}: " + "  ".join(
                f"[{b.bucket_low:.3g},{b.bucket_high:.3g}]={b.mean_value:.3g}" for b in buckets
            )
    table += "\n\n" + ascii_scatter(
        {
            kind: [(m["step_time"] * 1e3, m["quality"]) for m in stats[kind]["models"]]
            for kind in ("relu", "absolute")
        },
        x_label="training step time (ms)",
        y_label="quality",
    )
    emit("fig5_reward", table)
    emit_json("fig5_reward", {"stats": stats})
    return stats


def test_fig5_reward(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    relu_models = stats["relu"]["models"]
    abs_models = stats["absolute"]["models"]
    # Figure 5b: at comparable quality (the overlapping high-quality
    # band), the ReLU-searched models have better mean step time
    # (paper: up to 13% better).
    floor = max(min(m["quality"] for m in relu_models),
                min(m["quality"] for m in abs_models))
    relu_times = [m["step_time"] for m in relu_models if m["quality"] >= floor]
    abs_times = [m["step_time"] for m in abs_models if m["quality"] >= floor]
    assert relu_times and abs_times
    assert float(np.mean(relu_times)) < float(np.mean(abs_times))
    # Figure 5c: no quality sacrificed for the speed — the best ReLU
    # model sits within a fraction of a point of the best absolute one.
    best_relu = max(m["quality"] for m in relu_models)
    best_abs = max(m["quality"] for m in abs_models)
    assert best_relu > best_abs - 0.25
    # Serving memory: ReLU models are smaller on average (paper: 1.6%)
    # and never blow the neutral size target, while the absolute reward
    # is pushed onto the target from BOTH sides and can overshoot it.
    assert stats["relu"]["mean_size"] < stats["absolute"]["mean_size"]
    size_target = build_problem()[3]["model_size"]
    for m in relu_models:
        assert m["model_size"] <= size_target * 1.02
    # Every search produced a valid model with sensible metrics.
    for m in relu_models + abs_models:
        assert m["step_time"] > 0 and m["quality"] > 70.0
