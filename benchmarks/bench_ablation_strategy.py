"""Ablation: search strategies and the Section 7.3 cost accounting.

Two halves of the paper's efficiency argument:

1. **Search quality at a matched evaluation budget.**  The single-step
   RL search, random search, and regularized evolution optimize the
   same DLRM problem (surrogate quality + simulator performance) with
   the same number of candidate evaluations.  The RL and evolutionary
   strategies must beat random; the RL one-shot search must be
   competitive with evolution — while being the only strategy that can
   run *one-shot* (evolution requires rewards comparable across steps,
   Section 2.1, so in production it would pay per-trial training).

2. **Cost accounting (Section 7.3).**  One-shot search costs ~1.5x a
   vanilla training plus a 1x retrain (~2.5x total); multi-trial pays
   one training per trial; the whole search is a vanishing fraction of
   downstream compute.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    NasCostModel,
    PerformanceObjective,
    RandomSearch,
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    relu_reward,
)
from repro.data import NullSource, SingleStepPipeline
from repro.models import baseline_production_dlrm
from repro.models.dlrm import apply_architecture
from repro.models.timing import DlrmTimingHarness
from repro.quality import DlrmQualityModel
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

from .common import emit, emit_json

NUM_TABLES = 3
EVALUATION_BUDGET = 1600
RL_CORES = 8
QUALITY_WEIGHT = 2.0


def build_problem():
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    baseline = baseline_production_dlrm(num_tables=NUM_TABLES)
    harness = DlrmTimingHarness(baseline, seed=0)
    quality_model = DlrmQualityModel(baseline)
    cache = {}

    def metrics_fn(arch):
        if arch not in cache:
            cache[arch] = {"train_step_time": harness.simulate(arch)[0]}
        return cache[arch]

    def quality_fn(arch):
        return QUALITY_WEIGHT * quality_model.quality(apply_architecture(baseline, arch))

    base_time = metrics_fn(space.default_architecture())["train_step_time"]
    objectives = [PerformanceObjective("train_step_time", base_time, beta=-3.0)]
    return space, metrics_fn, quality_fn, objectives


def run():
    space, metrics_fn, quality_fn, objectives = build_problem()
    reward_fn = relu_reward(objectives)

    def evaluate(arch):
        return quality_fn(arch), metrics_fn(arch)

    results = {}
    # Single-step RL (one-shot): budget = steps x cores evaluations.
    rl = SingleStepSearch(
        space=space,
        supernet=SurrogateSuperNetwork(quality_fn, noise_sigma=0.01, seed=0),
        pipeline=SingleStepPipeline(NullSource().next_batch),
        reward_fn=reward_fn,
        performance_fn=metrics_fn,
        config=SearchConfig(
            steps=EVALUATION_BUDGET // RL_CORES,
            num_cores=RL_CORES,
            warmup_steps=10,
            policy_lr=0.12,
            policy_entropy_coef=0.15,
            record_candidates=False,
            seed=0,
        ),
    )
    final = rl.run().final_architecture
    results["rl_one_shot"] = reward_fn(*evaluate(final))
    # Random search.
    random_result = RandomSearch(
        space, evaluate, reward_fn, num_trials=EVALUATION_BUDGET, seed=0
    ).run()
    results["random"] = random_result.best.reward
    # Regularized evolution.
    evolution_result = EvolutionarySearch(
        space,
        evaluate,
        reward_fn,
        EvolutionConfig(population_size=32, tournament_size=8, num_trials=EVALUATION_BUDGET),
        seed=0,
    ).run()
    results["evolution"] = evolution_result.best.reward

    table = format_table(
        ["strategy", "final reward", "one-shot capable"],
        [
            ["single-step RL", f"{results['rl_one_shot']:.3f}", True],
            ["regularized evolution", f"{results['evolution']:.3f}", False],
            ["random search", f"{results['random']:.3f}", False],
        ],
    )
    # Section 7.3 cost accounting.
    cost = NasCostModel(vanilla_training_hours=1000.0)
    table += "\n\n" + format_table(
        ["cost row (Section 7.3)", "value", "paper"],
        [
            ["one-shot search cost (x vanilla)", f"{1 + cost.search_overhead:.1f}", "~1.5"],
            ["one-shot total incl. retrain (x vanilla)", f"{cost.one_shot_multiple():.1f}", "~2.5"],
            [
                f"multi-trial with {EVALUATION_BUDGET} trials (x vanilla)",
                f"{cost.multi_trial_hours(EVALUATION_BUDGET) / 1000.0:.0f}",
                f"{EVALUATION_BUDGET}",
            ],
            [
                "one-shot advantage at that budget",
                f"{cost.one_shot_advantage(EVALUATION_BUDGET):.0f}x",
                "orders of magnitude",
            ],
            [
                "fraction of 10M downstream hours",
                f"{cost.downstream_fraction(1e7):.4%}",
                "< 0.03%",
            ],
        ],
    )
    emit("ablation_strategy", table)
    emit_json("ablation_strategy", {"results": results, "cost": cost})
    return results, cost


def test_ablation_strategy(benchmark):
    results, cost = benchmark.pedantic(run, rounds=1, iterations=1)
    # Informed strategies beat random at the same budget.
    assert results["rl_one_shot"] > results["random"] - 0.05
    assert results["evolution"] >= results["random"] - 1e-9
    # The one-shot RL search is competitive with evolution (within the
    # reward noise) while being the only strategy that runs one-shot.
    assert results["rl_one_shot"] > results["evolution"] - 0.35
    # Section 7.3 accounting.
    assert cost.one_shot_multiple() == 2.5
    assert cost.one_shot_advantage(EVALUATION_BUDGET) > 100
    assert cost.downstream_fraction(1e7) < 0.0003
