"""Telemetry-overhead benchmark: instrumented vs bare search steps.

The telemetry subsystem sits on the search hot path (per-step spans,
per-shard cache counters, per-batch pipeline gauges, step events), so it
is only acceptable if its cost disappears against real step compute.
This benchmark runs the same DLRM search with telemetry off and with
full telemetry on — registry, spans, and a disk-backed event log — and
asserts the contract DESIGN.md section 9 promises: **< 5%** added
wall clock per step in the production-traffic regime.  Each
configuration is timed min-of-3 so scheduler noise does not flip the
verdict.
"""

from __future__ import annotations

import tempfile
import time

import pytest

from repro.analysis import format_table
from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    relu_reward,
)
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig
from repro.telemetry import Telemetry

from .common import emit, emit_json

pytestmark = pytest.mark.slow

NUM_TABLES = 2
STEPS = 30
CORES = 8
BATCH = 512  # production-traffic regime: per-step compute dominates bookkeeping
REPEATS = 3
MAX_OVERHEAD = 0.05


def performance_fn(arch):
    cost = 1.0
    for t in range(NUM_TABLES):
        cost += 0.05 * arch[f"emb{t}/width_delta"]
        cost += 0.15 * (arch[f"emb{t}/vocab_scale"] - 1.0)
    for s in range(2):
        cost += 0.04 * arch[f"dense{s}/width_delta"]
    return {"step_time": max(0.1, cost)}


def build_search(telemetry=None, seed=0):
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2)
    )
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=NUM_TABLES, batch_size=BATCH, seed=seed)
    )
    return SingleStepSearch(
        space=space,
        supernet=DlrmSuperNetwork(
            DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)
        ),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, beta=-0.5)]),
        performance_fn=performance_fn,
        config=SearchConfig(
            steps=STEPS, num_cores=CORES, warmup_steps=5, seed=seed,
            telemetry=telemetry,
        ),
    )


def time_run(telemetry=None):
    """Wall clock of one full search run (steps only, not construction)."""
    search = build_search(telemetry=telemetry)
    started = time.perf_counter()
    history = [search.step(step) for step in range(STEPS)]
    elapsed = time.perf_counter() - started
    search.build_result(history)
    return elapsed


def test_bench_telemetry_overhead():
    bare_s = min(time_run() for _ in range(REPEATS))
    with tempfile.TemporaryDirectory() as tmp:
        instrumented_runs = []
        for _ in range(REPEATS):
            telemetry = Telemetry(tmp)
            instrumented_runs.append(time_run(telemetry=telemetry))
            telemetry.close()
    instrumented_s = min(instrumented_runs)

    overhead = instrumented_s / bare_s - 1.0
    rows = [
        ["bare search step", f"{1e3 * bare_s / STEPS:.2f}"],
        ["instrumented search step", f"{1e3 * instrumented_s / STEPS:.2f}"],
        ["telemetry overhead", f"{overhead:.1%}"],
        ["contract ceiling", f"{MAX_OVERHEAD:.0%}"],
    ]
    emit("bench_telemetry", format_table(["operation", "ms"], rows))
    emit_json(
        "bench_telemetry",
        {
            "steps": STEPS,
            "num_cores": CORES,
            "batch_size": BATCH,
            "repeats": REPEATS,
            "bare_step_ms": 1e3 * bare_s / STEPS,
            "instrumented_step_ms": 1e3 * instrumented_s / STEPS,
            "overhead_fraction": overhead,
            "max_overhead_fraction": MAX_OVERHEAD,
        },
    )
    # The acceptance contract: full telemetry (metrics + spans + disk
    # event log) costs < 5% of step wall clock at production batch size.
    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {overhead:.1%} exceeds the {MAX_OVERHEAD:.0%} contract"
    )
