"""Figure 7: hardware analysis of CoAtNet-H5 vs CoAtNet-5 on TPUv4.

Regenerates the normalized counters the paper plots — training step
time, compute rate (FLOPS), total compute load (FLOPs), total memory
bandwidth, CMEM bandwidth, and HBM traffic — all as CoAtNet-H5 over
CoAtNet-5 ratios.

Shape claims asserted: the speedup comes from a ~2x FLOPs reduction
rather than a higher compute rate; off-chip HBM traffic *drops*; the
model stays compute-bound.  (The paper additionally reports a 14% drop
in achieved FLOPS and a 5.3x CMEM-bandwidth increase; our roofline
abstraction yields a flat compute rate and a CMEM shift of smaller
magnitude — see EXPERIMENTS.md.)
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.hardware import TPU_V4, simulate
from repro.models import COATNET, COATNET_H
from repro.models.coatnet import build_graph

from .common import emit, emit_json

BATCH = 64

PAPER_RATIOS = {
    "step time": 0.54,
    "compute rate (FLOPS)": 0.86,
    "compute load (FLOPs)": 0.47,
    "total memory BW": 1.20,
    "CMEM BW": 5.30,
    "HBM traffic": 0.65,
}


def run():
    r5 = simulate(build_graph(COATNET["5"], batch=BATCH), TPU_V4)
    rh5 = simulate(build_graph(COATNET_H["5"], batch=BATCH), TPU_V4)
    ratios = {
        "step time": rh5.total_time_s / r5.total_time_s,
        "compute rate (FLOPS)": rh5.achieved_flops / r5.achieved_flops,
        "compute load (FLOPs)": rh5.total_flops / r5.total_flops,
        "total memory BW": (
            (rh5.hbm_bandwidth_used + rh5.cmem_bandwidth_used)
            / (r5.hbm_bandwidth_used + r5.cmem_bandwidth_used)
        ),
        "CMEM BW": rh5.cmem_bandwidth_used / max(r5.cmem_bandwidth_used, 1.0),
        "HBM traffic": rh5.hbm_bytes / r5.hbm_bytes,
    }
    table = format_table(
        ["counter", "C-H5 / C5 (ours)", "C-H5 / C5 (paper)"],
        [[k, f"{v:.2f}", f"{PAPER_RATIOS[k]:.2f}"] for k, v in ratios.items()],
    )
    table += (
        f"\n\nraw: C5 {r5.achieved_tflops:.0f} TFLOP/s, {r5.total_time_s*1e3:.1f} ms/step;"
        f" C-H5 {rh5.achieved_tflops:.0f} TFLOP/s, {rh5.total_time_s*1e3:.1f} ms/step"
        f"\nC5 compute-bound fraction: {r5.bound_fraction('compute'):.2f},"
        f" C-H5: {rh5.bound_fraction('compute'):.2f}"
    )
    emit("fig7_hw_analysis", table)
    emit_json("fig7_hw_analysis", {"ratios": ratios, "r5": r5, "rh5": rh5})
    return ratios, r5, rh5


def test_fig7_hw_analysis(benchmark):
    ratios, r5, rh5 = benchmark.pedantic(run, rounds=1, iterations=1)
    # ~1.8-2.3x speedup driven by the compute-load cut, not a rate gain.
    assert 0.40 < ratios["step time"] < 0.60
    assert 0.40 < ratios["compute load (FLOPs)"] < 0.60
    assert ratios["compute rate (FLOPS)"] < 1.25
    # Off-chip traffic drops.
    assert ratios["HBM traffic"] < 0.8
    # Both models remain predominantly compute-bound.
    assert r5.bound_fraction("compute") > 0.5
    assert rh5.bound_fraction("compute") > 0.5
