"""Evaluation-runtime benchmark: memoized candidate pricing.

Late in a single-step search the policy has converged, so most of the
``num_cores`` candidates sampled each step repeat architectures the
search has already priced.  Re-running the analytical timing simulator
for each repeat is pure waste — the metrics are deterministic in the
decision indices.  The :class:`~repro.core.EvalRuntime` memoizes
pricing by canonical index key; this benchmark measures the resulting
candidate-pricing throughput (candidates priced per second of
price-stage wall time) on a converged-policy workload and asserts the
cache delivers at least a 2x improvement.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import (
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    relu_reward,
    PerformanceObjective,
)
from repro.data import NullSource, SingleStepPipeline
from repro.models import baseline_production_dlrm
from repro.models.timing import DlrmTimingHarness
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

from .common import emit, emit_json

pytestmark = pytest.mark.slow

NUM_TABLES = 3
STEPS = 60
CORES = 8
CONVERGED_LOGIT = 7.0  # sharply peaks every decision, as late in a search


def build_search(use_cache):
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2)
    )
    harness = DlrmTimingHarness(baseline_production_dlrm(num_tables=NUM_TABLES), seed=0)

    def performance_fn(arch):
        train_time, serve_time = harness.simulate(arch)
        return {"train_step_time": train_time, "serving_latency": serve_time}

    base_time = performance_fn(space.default_architecture())["train_step_time"]
    search = SingleStepSearch(
        space=space,
        supernet=SurrogateSuperNetwork(lambda arch: 0.5, seed=0),
        pipeline=SingleStepPipeline(NullSource().next_batch),
        reward_fn=relu_reward(
            [PerformanceObjective("train_step_time", base_time, beta=-3.0)]
        ),
        performance_fn=performance_fn,
        config=SearchConfig(
            steps=STEPS,
            num_cores=CORES,
            warmup_steps=0,
            policy_lr=1e-6,  # hold the converged policy in place
            record_candidates=False,
            seed=0,
            use_cache=use_cache,
        ),
    )
    # Emulate a converged policy: concentrate every decision.
    for logit in search.controller.policy.logits:
        logit[0] = CONVERGED_LOGIT
    return search


def price_throughput(stats):
    priced = stats.cache_hits + stats.cache_misses if stats.cache_enabled else stats.evaluations
    return priced / max(stats.stage_seconds["price"], 1e-12)


def run():
    cached = build_search(use_cache=True).run().eval_stats
    uncached = build_search(use_cache=False).run().eval_stats
    speedup = price_throughput(cached) / price_throughput(uncached)
    rows = [
        [
            "cache on",
            f"{price_throughput(cached):.0f}",
            f"{cached.stage_seconds['price'] * 1e3:.1f}",
            cached.evaluations,
            f"{cached.hit_rate:.1%}",
        ],
        [
            "cache off",
            f"{price_throughput(uncached):.0f}",
            f"{uncached.stage_seconds['price'] * 1e3:.1f}",
            uncached.evaluations,
            "-",
        ],
    ]
    table = format_table(
        ["runtime", "candidates/s (price)", "price ms", "simulator calls", "hit rate"],
        rows,
    )
    table += f"\n\nprice-stage throughput speedup: {speedup:.1f}x"
    table += "\n\nper-stage wall time, cache on (ms):\n" + format_table(
        ["stage", "ms", "calls"],
        [
            [stage, f"{cached.stage_seconds[stage] * 1e3:.1f}", cached.stage_calls[stage]]
            for stage in cached.stage_seconds
        ],
    )
    emit("eval_runtime", table)
    emit_json(
        "eval_runtime",
        {
            "steps": STEPS,
            "cores": CORES,
            "cached_throughput": price_throughput(cached),
            "uncached_throughput": price_throughput(uncached),
            "speedup": speedup,
            "hit_rate": cached.hit_rate,
            "simulator_calls_cached": cached.evaluations,
            "simulator_calls_uncached": uncached.evaluations,
            "stage_seconds_cached": dict(cached.stage_seconds),
        },
    )
    return cached, uncached, speedup


def test_eval_runtime_cache(benchmark):
    cached, uncached, speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    # Both runs priced the same candidate stream.
    assert cached.cache_hits + cached.cache_misses == STEPS * CORES
    assert uncached.evaluations == STEPS * CORES
    # A converged policy repeats candidates, so most pricings hit.
    assert cached.hit_rate > 0.5
    assert cached.evaluations < uncached.evaluations
    # Acceptance criterion: >= 2x candidate-pricing throughput.
    assert speedup >= 2.0, f"cache speedup only {speedup:.2f}x"
