"""Figure 10: quality and performance gains of the production fleet.

Runs a zero-touch H2O-NAS search for each of five production CV models
and five production DLRMs (quality from the calibrated surrogates,
performance from the hardware simulator), with training performance as
the primary objective and the ReLU reward.  Quality is weighted first,
matching the paper's "quality is always the first priority".

Claims reproduced: average training-performance gain around the
paper's 1.29x (CV) and 1.22x (DLRM); CV quality clearly improves
(paper: +2.83pp); DLRM quality stays neutral within hundredths of a
point (paper reports +0.12pp — our surrogate prices the forced speedup
slightly differently; see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    relu_reward,
)
from repro.data import NullSource, SingleStepPipeline
from repro.hardware import TPU_V4, simulate
from repro.models import coatnet as coatnet_mod
from repro.models import dlrm as dlrm_mod
from repro.models.production import (
    apply_cv_architecture,
    cv_production_fleet,
    cv_search_space,
    dlrm_production_fleet,
)
from repro.models.timing import DlrmTimingHarness
from repro.quality import DlrmQualityModel, coatnet_quality
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

from .common import emit, emit_json

CV_BATCH = 32
QUALITY_WEIGHT = 4.0
DLRM_QUALITY_WEIGHT = 8.0


def search_cv_model(baseline, seed=0):
    space = cv_search_space()
    base_time = simulate(
        coatnet_mod.build_graph(baseline, batch=CV_BATCH), TPU_V4
    ).total_time_s
    cache = {}

    def perf_fn(arch):
        if arch not in cache:
            config = apply_cv_architecture(baseline, arch)
            time = simulate(coatnet_mod.build_graph(config, batch=CV_BATCH), TPU_V4).total_time_s
            cache[arch] = {"train_step_time": time}
        return cache[arch]

    def quality_fn(arch):
        return coatnet_quality(apply_cv_architecture(baseline, arch))

    # "H2O-NAS always targets better performance, with neutral or better
    # quality" (Section 7.1): the launch target demands a faster model.
    target_time = base_time * 0.70
    search = SingleStepSearch(
        space=space,
        supernet=SurrogateSuperNetwork(
            lambda a: QUALITY_WEIGHT * quality_fn(a), noise_sigma=0.01, seed=seed
        ),
        pipeline=SingleStepPipeline(NullSource().next_batch),
        reward_fn=relu_reward(
            [PerformanceObjective("train_step_time", target_time, beta=-6.0)]
        ),
        performance_fn=perf_fn,
        config=SearchConfig(
            steps=150, num_cores=8, warmup_steps=10, policy_lr=0.15,
            policy_entropy_coef=0.1, record_candidates=False, seed=seed,
        ),
    )
    final = search.run().final_architecture
    return {
        "perf_gain": base_time / perf_fn(final)["train_step_time"],
        "quality_gain": quality_fn(final) - coatnet_quality(baseline),
    }


def search_dlrm_model(baseline, seeds=(0, 1)):
    """Run the DLRM search once per seed and keep the best-reward model,
    as production searches retain the best of several runs."""
    outcomes = [_search_dlrm_once(baseline, seed) for seed in seeds]
    return max(outcomes, key=lambda o: o.pop("reward"))


def _search_dlrm_once(baseline, seed):
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=len(baseline.tables), num_dense_stacks=2)
    )
    harness = DlrmTimingHarness(baseline, seed=seed)
    quality_model = DlrmQualityModel(baseline)
    base_time = harness.simulate(space.default_architecture())[0]
    cache = {}

    def perf_fn(arch):
        if arch not in cache:
            cache[arch] = {"train_step_time": harness.simulate(arch)[0]}
        return cache[arch]

    def quality_fn(arch):
        return quality_model.quality(dlrm_mod.apply_architecture(baseline, arch))

    # The launch target demands a faster training step than baseline.
    target_time = base_time * 0.90
    search = SingleStepSearch(
        space=space,
        supernet=SurrogateSuperNetwork(
            lambda a: DLRM_QUALITY_WEIGHT * quality_fn(a), noise_sigma=0.01, seed=seed
        ),
        pipeline=SingleStepPipeline(NullSource().next_batch),
        reward_fn=relu_reward(
            [PerformanceObjective("train_step_time", target_time, beta=-6.0)]
        ),
        performance_fn=perf_fn,
        config=SearchConfig(
            steps=350, num_cores=8, warmup_steps=10, policy_lr=0.12,
            policy_entropy_coef=0.12, record_candidates=False, seed=seed,
        ),
    )
    final = search.run().final_architecture
    final_time = perf_fn(final)["train_step_time"]
    reward = search.reward_fn(
        DLRM_QUALITY_WEIGHT * quality_fn(final), {"train_step_time": final_time}
    )
    return {
        "perf_gain": base_time / final_time,
        "quality_gain": quality_fn(final) - quality_model.quality(baseline),
        "reward": reward,
    }


def run():
    results = {}
    for label, baseline in cv_production_fleet().items():
        results[label] = search_cv_model(baseline)
    for label, baseline in dlrm_production_fleet().items():
        results[label] = search_dlrm_model(baseline)
    table = format_table(
        ["model", "training perf gain", "quality gain (pp)"],
        [
            [label, f"{r['perf_gain']:.2f}x", f"{r['quality_gain']:+.3f}"]
            for label, r in results.items()
        ],
    )
    cv_gains = [results[f"CV{i}"] for i in range(1, 6)]
    dlrm_gains = [results[f"DLRM{i}"] for i in range(1, 6)]
    table += (
        f"\n\nCV average: {np.mean([g['perf_gain'] for g in cv_gains]):.2f}x perf"
        f" (paper 1.29x), {np.mean([g['quality_gain'] for g in cv_gains]):+.2f}pp quality (paper +2.83pp)"
        f"\nDLRM average: {np.mean([g['perf_gain'] for g in dlrm_gains]):.2f}x perf"
        f" (paper 1.22x), {np.mean([g['quality_gain'] for g in dlrm_gains]):+.3f}pp quality (paper +0.12pp)"
    )
    emit("fig10_production", table)
    emit_json("fig10_production", {"results": results})
    return results


def test_fig10_production(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    cv = [results[f"CV{i}"] for i in range(1, 6)]
    dlrm = [results[f"DLRM{i}"] for i in range(1, 6)]
    # Quality first: every optimized model is neutral or better
    # (neutral = within ~0.1pp on the surrogate's scale).
    for r in results.values():
        assert r["quality_gain"] > -0.12
    # Fleet-average gains near the paper's 1.29x / 1.22x.
    assert 1.05 < np.mean([r["perf_gain"] for r in cv]) < 2.2
    assert 1.02 < np.mean([r["perf_gain"] for r in dlrm]) < 1.8
    # CV quality clearly improves; DLRM quality stays neutral (the
    # paper reports +0.12pp — see EXPERIMENTS.md for the gap note).
    assert np.mean([r["quality_gain"] for r in cv]) > 0.1
    assert abs(np.mean([r["quality_gain"] for r in dlrm])) < 0.05
