"""Table 3: CoAtNet-H5 ablation — accuracy / params / FLOPs / throughput.

Regenerates the four rows (CoAtNet-5, +DeeperConv, +ResShrink,
+SquaredReLU) with per-chip batch 64 on TPUv4, and asserts the paper's
shape: deeper conv raises accuracy and slightly lowers throughput; the
resolution shrink roughly halves FLOPs and nearly doubles throughput at
an accuracy cost; squared ReLU recovers the accuracy at no throughput
cost.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.hardware import TPU_V4, simulate
from repro.models import COATNET
from repro.models.coatnet import build_graph, num_params
from repro.quality import coatnet_quality

from .common import emit, emit_json

BATCH = 64

PAPER_ROWS = {
    "CoAtNet-5": (89.7, 688, 1012, 101),
    "+DeeperConv": (90.3, 697, 1060, 97),
    "+ResShrink": (88.9, 697, 474, 186),
    "+SquaredReLU (CoAtNet-H5)": (89.7, 697, 476, 186),
}


def variants():
    base = COATNET["5"]
    deeper = base.with_deeper_conv(4)
    shrunk = deeper.with_resolution(160)
    h5 = shrunk.with_activation("squared_relu")
    return {
        "CoAtNet-5": base,
        "+DeeperConv": deeper,
        "+ResShrink": shrunk,
        "+SquaredReLU (CoAtNet-H5)": h5,
    }


def run():
    rows = {}
    for label, config in variants().items():
        graph = build_graph(config, batch=BATCH)
        result = simulate(graph, TPU_V4)
        rows[label] = {
            "accuracy": coatnet_quality(config),
            "params_m": num_params(config) / 1e6,
            "gflops": graph.total_flops / BATCH / 1e9,
            "throughput": BATCH / result.total_time_s,
        }
    table = format_table(
        ["model", "top-1 (ours)", "top-1 (paper)", "params M (ours/paper)",
         "GFLOPs (ours/paper)", "img/s/chip (ours/paper)"],
        [
            [
                label,
                f"{r['accuracy']:.1f}",
                f"{PAPER_ROWS[label][0]:.1f}",
                f"{r['params_m']:.0f}/{PAPER_ROWS[label][1]}",
                f"{r['gflops']:.0f}/{PAPER_ROWS[label][2]}",
                f"{r['throughput']:.0f}/{PAPER_ROWS[label][3]}",
            ]
            for label, r in rows.items()
        ],
    )
    emit("table3_coatnet_ablation", table)
    emit_json("table3_coatnet_ablation", {"rows": rows})
    return rows


def test_table3_coatnet_ablation(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base, deeper = rows["CoAtNet-5"], rows["+DeeperConv"]
    shrunk, h5 = rows["+ResShrink"], rows["+SquaredReLU (CoAtNet-H5)"]
    # Accuracy anchors match the paper's numbers closely.
    for label, paper in PAPER_ROWS.items():
        assert abs(rows[label]["accuracy"] - paper[0]) < 0.15
    # Deeper conv: more params, more FLOPs, slightly lower throughput.
    assert deeper["params_m"] > base["params_m"]
    assert deeper["gflops"] > base["gflops"]
    assert deeper["throughput"] < base["throughput"]
    # Resolution shrink roughly halves the compute load...
    assert 0.4 < shrunk["gflops"] / deeper["gflops"] < 0.6
    # ...and delivers the big throughput win (paper: 97 -> 186 img/s).
    assert shrunk["throughput"] / deeper["throughput"] > 1.5
    # Squared ReLU is hardware-neutral.
    assert abs(h5["throughput"] / shrunk["throughput"] - 1.0) < 0.05
    # End to end: H5 is ~1.8x the baseline throughput at neutral quality.
    speedup = h5["throughput"] / base["throughput"]
    assert 1.5 < speedup < 2.6
    assert abs(h5["accuracy"] - base["accuracy"]) < 0.15
