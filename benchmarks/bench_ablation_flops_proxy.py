"""Ablation: FLOPs as a performance proxy vs the hybrid performance model.

Section 6.2: "Hardware-agnostic performance objectives such as FLOPs
have been demonstrated to be a poor performance objective for NAS
because of their high correlation error (>400%) to actual performance"
(the figure comes from the EfficientNet-X study of CNNs on datacenter
accelerators, where depthwise convolutions have tiny FLOPs but poor
runtime).

We reproduce the comparison on the convolutional search space: sample
candidates mixing MBConv (FLOP-light, vector-unit-bound) and fused
MBConv (FLOP-heavy, matrix-unit-friendly) blocks, grant every proxy
its best global calibration, and compare against deterministic
hardware-testbed measurements.  FLOPs mis-prices candidates by
hundreds of percent; the two-phase performance model stays in the low
single digits.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.analysis.correlation import proxy_relative_error
from repro.models import CnnBaseline
from repro.models.cnn_timing import CnnTimingHarness, build_cnn_graph, num_params
from repro.perfmodel import (
    ArchitectureEncoder,
    PerformanceModel,
    TwoPhaseConfig,
    TwoPhaseTrainer,
)
from repro.searchspace import CnnSpaceConfig, cnn_search_space

from .common import emit, emit_json

NUM_BLOCKS = 3
NUM_EVAL = 300
PRETRAIN_SAMPLES = 6000


def run():
    space = cnn_search_space(
        CnnSpaceConfig(num_blocks=NUM_BLOCKS, include_resolution=False)
    )
    baseline = CnnBaseline(stage_widths=(24, 48, 96), stage_depths=(2, 2, 3))
    harness = CnnTimingHarness(baseline, seed=0)
    # Train the hybrid performance model (scaled-down Table 1 recipe).
    model = PerformanceModel(
        ArchitectureEncoder(space), hidden_sizes=(512, 512),
        size_fn=harness.model_size, seed=0,
    )
    trainer = TwoPhaseTrainer(
        model, space, simulate_fn=harness.simulate, measure_fn=harness.measure,
        config=TwoPhaseConfig(
            pretrain_epochs=90, pretrain_lr=2e-3,
            finetune_epochs=200, finetune_lr=5e-5,
        ),
        seed=0,
    )
    trainer.pretrain(PRETRAIN_SAMPLES)
    trainer.finetune(20)
    # Evaluate all proxies against deterministic hardware time.
    rng = np.random.default_rng(7)
    archs = [space.sample(rng) for _ in range(NUM_EVAL)]
    truth = np.array([harness.measure_deterministic(a)[0] for a in archs])
    flops = np.array(
        [build_cnn_graph(baseline, a, batch=harness.train_batch).total_flops for a in archs]
    )
    params = np.array([num_params(baseline, a) for a in archs])
    predicted = model.predict_times(archs)[:, 0]
    reports = {
        "total FLOPs": proxy_relative_error(flops, truth),
        "parameter count": proxy_relative_error(params, truth),
        "hybrid perf model": proxy_relative_error(predicted, truth),
    }
    table = format_table(
        ["proxy", "mean rel. error", "max rel. error", "Spearman rank corr."],
        [
            [name, f"{r.mean_relative_error:.1%}", f"{r.max_relative_error:.1%}", f"{r.spearman:.3f}"]
            for name, r in reports.items()
        ],
    )
    table += "\n(paper: FLOPs proxies show >400% correlation error; Section 6.2)"
    emit("ablation_flops_proxy", table)
    emit_json("ablation_flops_proxy", {"reports": reports})
    return reports


def test_ablation_flops_proxy(benchmark):
    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    flops = reports["total FLOPs"]
    perf_model = reports["hybrid perf model"]
    # FLOPs is a bad proxy: even after its best calibration, candidates
    # remain mis-priced by hundreds of percent (the paper's >400% is
    # the same order of magnitude).
    assert flops.max_relative_error > 1.0
    assert flops.mean_relative_error > perf_model.mean_relative_error * 2.5
    # The hybrid performance model stays far more faithful (the paper's
    # full-scale model, trained on 1M samples, reaches 1-3%; this
    # 8k-sample run lands in the teens on the same wild space).
    assert perf_model.mean_relative_error < 0.25
    # And rank fidelity follows the same ordering.
    assert perf_model.spearman > flops.spearman
    assert perf_model.spearman > 0.95
