"""Table 5: search-space definitions and their sizes.

Regenerates the per-block cardinalities (302,400 per convolutional
block; 17,920 per transformer block) and the four space sizes —
``O(10^39)`` CNN, ``O(10^282)`` DLRM, ``O(10^8)`` transformer,
``O(10^21)`` hybrid ViT — from the implemented decision lists.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.searchspace import per_block_cardinalities, table5_size_rows

from .common import emit, emit_json


def run():
    blocks = per_block_cardinalities()
    rows = table5_size_rows()
    table = format_table(
        ["search space", "log10(size) here", "log10(size) paper", "within tolerance"],
        [
            [name, row.log10_size, row.paper_log10, row.matches_paper_order]
            for name, row in rows.items()
        ],
    )
    table += "\n\nper-block cardinalities: " + ", ".join(
        f"{k}={v:,}" for k, v in blocks.items()
    )
    emit("table5_searchspace", table)
    emit_json("table5_searchspace", {"blocks": blocks, "rows": rows})
    return blocks, rows


def test_table5_searchspace(benchmark):
    blocks, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert blocks["cnn_block"] == 302400  # the paper's per-block count
    assert blocks["tfm_block"] == 17920
    for row in rows.values():
        assert row.matches_paper_order, row
