"""Ablation: hybrid (coarse-vocabulary) vs fine-grained weight sharing.

Section 5.1.2 argues each vocabulary-size candidate needs its *own*
embedding table ("coarse-grained" sharing) because sharing one table
across vocabulary sizes lets candidates that wrap ids into fewer rows
corrupt the rows other candidates rely on.  This ablation trains the
DLRM super-network both ways on identical streams and architecture
samples and compares:

* structurally — in fine mode one table object backs every vocabulary
  candidate, and a small-vocabulary candidate's gradient lands in rows
  the full-vocabulary candidate owns (the interference); in coarse
  mode the tables are disjoint;
* empirically — both sides of the paper's stated trade-off appear:
  fine sharing gives every candidate more gradient updates (its
  full-vocabulary candidates train on every batch and score well), but
  its interference distorts the quality *ranking* across vocabulary
  candidates — the small-vocabulary candidates are additionally
  corrupted by conflicting updates, which would mislead the RL
  controller's vocabulary decisions.  The hybrid design trades a little
  training signal for a faithful ranking.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.data import CtrTaskConfig, CtrTeacher
from repro.nn import Adam
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig

from .common import emit, emit_json

NUM_TABLES = 2
STEPS = 800
SEEDS = (0, 1, 2)
TASK = dict(
    num_tables=NUM_TABLES,
    batch_size=128,
    memorization_weight=2.0,
    generalization_weight=0.3,
)


def train_and_probe(mode: str, seed: int):
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    net = DlrmSuperNetwork(
        DlrmSupernetConfig(num_tables=NUM_TABLES, vocab_sharing=mode, seed=0)
    )
    teacher = CtrTeacher(CtrTaskConfig(seed=1, **TASK))
    rng = np.random.default_rng(seed)
    optimizer = Adam(net.parameters(), lr=0.01)
    for _ in range(STEPS):
        arch = space.sample(rng)
        batch = teacher.next_batch()
        optimizer.zero_grad()
        net.loss(arch, batch.inputs, batch.labels).backward()
        optimizer.step()
    # Probe on fresh batches from the same stream (never trained on).
    batches = [teacher.next_batch() for _ in range(10)]
    base = space.default_architecture()
    probe = {}
    for scale in (0.5, 1.0, 2.0):
        arch = base.replaced(**{f"emb{t}/vocab_scale": scale for t in range(NUM_TABLES)})
        probe[scale] = float(
            np.mean([net.quality(arch, b.inputs, b.labels) for b in batches])
        )
    return net, probe


def interference_check():
    """Structural check of the row-interference mechanism."""
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    teacher = CtrTeacher(CtrTaskConfig(seed=5, **TASK))
    batch = teacher.next_batch()
    results = {}
    for mode in ("coarse", "fine"):
        net = DlrmSuperNetwork(
            DlrmSupernetConfig(num_tables=NUM_TABLES, vocab_sharing=mode, seed=0)
        )
        small = space.default_architecture().replaced(**{"emb0/vocab_scale": 0.5})
        net.zero_grad()
        net.loss(small, batch.inputs, batch.labels).backward()
        full_table = net.embeddings[0][1.0].table
        results[mode] = {
            "tables_shared": net.embeddings[0][0.5].table is full_table,
            "full_vocab_grad_touched": (
                full_table.grad is not None and bool(np.any(full_table.grad != 0))
            ),
        }
    return results


def run():
    structure = interference_check()
    means = {}
    for mode in ("coarse", "fine"):
        probes = [train_and_probe(mode, seed)[1] for seed in SEEDS]
        means[mode] = {
            scale: float(np.mean([p[scale] for p in probes])) for scale in (0.5, 1.0, 2.0)
        }
    table = format_table(
        ["sharing", "q(vocab 0.5)", "q(vocab 1.0)", "q(vocab 2.0)", "tables shared", "interference"],
        [
            [
                mode,
                f"{means[mode][0.5]:.3f}",
                f"{means[mode][1.0]:.3f}",
                f"{means[mode][2.0]:.3f}",
                structure[mode]["tables_shared"],
                structure[mode]["full_vocab_grad_touched"],
            ]
            for mode in ("coarse", "fine")
        ],
    )
    emit("ablation_sharing", table)
    emit_json("ablation_sharing", {"structure": structure, "means": means})
    return structure, means


def test_ablation_sharing(benchmark):
    structure, means = benchmark.pedantic(run, rounds=1, iterations=1)
    # Structure: fine sharing reuses one table and lets a small-vocab
    # candidate's gradient corrupt the full-vocab candidate's rows.
    assert structure["fine"]["tables_shared"]
    assert structure["fine"]["full_vocab_grad_touched"]
    # Coarse sharing isolates the tables completely.
    assert not structure["coarse"]["tables_shared"]
    assert not structure["coarse"]["full_vocab_grad_touched"]
    # Interference: under fine sharing the small-vocabulary candidates
    # suffer extra corruption, so the quality drop from full to halved
    # vocabulary is larger than under the hybrid design — a distorted
    # ranking signal for the controller's vocabulary decisions.
    fine_drop = means["fine"][1.0] - means["fine"][0.5]
    coarse_drop = means["coarse"][1.0] - means["coarse"][0.5]
    assert fine_drop > coarse_drop
    # Training signal: fine sharing's full-vocabulary candidates see
    # every batch, so they are not worse than the hybrid's (the cost
    # side of the trade-off the paper describes).
    assert means["fine"][1.0] >= means["coarse"][1.0] - 0.02
    # The hybrid design still learns (well above chance) everywhere.
    assert min(means["coarse"].values()) > 0.55
