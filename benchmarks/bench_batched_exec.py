"""Batched shard execution vs. the sequential per-candidate paths.

Two measurements back the batched execution layer:

* **Batched pricing** (part A): a cold-cache shard priced through
  ``EvalRuntime.price_many`` — one ``encode_batch`` + one MLP forward
  for every miss — against the same shard priced candidate-by-candidate
  through ``EvalRuntime.price``.  The paper's O(ms) shard pricing
  depends on this shape; acceptance is >= 3x price-stage throughput.
* **Grouped supernet passes** (part B): a converged-policy single-step
  search over a real DLRM super-network with unique-architecture
  grouping on vs. off.  Once the policy concentrates, the shard's
  ``num_cores`` candidates collapse to a few unique architectures, so
  the score and weight-update stages run a few stacked passes instead
  of ``num_cores`` sequential ones; acceptance is a measurable
  reduction in score+weight wall time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    EvalRuntime,
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    arch_key,
    relu_reward,
)
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline
from repro.perfmodel import ArchitectureEncoder, PerformanceModel
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig

from .common import emit, emit_json

pytestmark = pytest.mark.slow

NUM_TABLES = 3
SHARD_CANDIDATES = 1024  # cold-cache shard size for the pricing measurement
SEARCH_STEPS = 40
CORES = 8
CONVERGED_LOGIT = 7.0  # sharply peaks every decision, as late in a search


def _unique_shard(space, count, seed=0):
    """``count`` distinct (arch, indices) pairs — a fully cold shard."""
    rng = np.random.default_rng(seed)
    drawn, seen = [], set()
    while len(drawn) < count:
        arch = space.sample(rng)
        indices = space.indices_of(arch)
        key = arch_key(indices)
        if key in seen:
            continue
        seen.add(key)
        drawn.append((arch, indices))
    return drawn


def run_pricing(shard_candidates=SHARD_CANDIDATES):
    """Part A: batched vs. per-candidate MLP pricing, cold cache."""
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2)
    )
    # MLP heads only: the analytical size head is per-architecture Python
    # either way, so it would dilute the batched-vs-sequential contrast
    # this measurement is after.
    model = PerformanceModel(
        ArchitectureEncoder(space), hidden_sizes=(512, 512), seed=0
    )
    drawn = _unique_shard(space, shard_candidates)

    batched = EvalRuntime(model, space=space)
    with batched.timed("price"):
        batched_metrics = batched.price_many(drawn)
    sequential = EvalRuntime(model, space=space)
    with sequential.timed("price"):
        sequential_metrics = [sequential.price(arch, idx) for arch, idx in drawn]

    for got, want in zip(batched_metrics, sequential_metrics):
        assert got.keys() == want.keys()
        assert all(np.isclose(got[k], want[k]) for k in want)
    batched_stats, sequential_stats = batched.stats(), sequential.stats()
    return {
        "shard_candidates": shard_candidates,
        "batched_throughput": batched_stats.price_throughput,
        "sequential_throughput": sequential_stats.price_throughput,
        "speedup": batched_stats.price_throughput
        / max(sequential_stats.price_throughput, 1e-12),
        "batched_price_seconds": batched_stats.stage_seconds["price"],
        "sequential_price_seconds": sequential_stats.stage_seconds["price"],
    }


def build_search(group_unique, steps=SEARCH_STEPS, cores=CORES, seed=0):
    """A converged-policy DLRM search over the real super-network."""
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2)
    )
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=NUM_TABLES, batch_size=64, seed=seed)
    )

    def performance_fn(arch):
        cost = 1.0
        for t in range(NUM_TABLES):
            cost += 0.05 * arch[f"emb{t}/width_delta"]
        return {"train_step_time": max(0.1, cost)}

    search = SingleStepSearch(
        space=space,
        supernet=DlrmSuperNetwork(
            DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)
        ),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward(
            [PerformanceObjective("train_step_time", 1.0, beta=-0.5)]
        ),
        performance_fn=performance_fn,
        config=SearchConfig(
            steps=steps,
            num_cores=cores,
            warmup_steps=0,
            policy_lr=1e-6,  # hold the converged policy in place
            record_candidates=False,
            seed=seed,
            group_unique=group_unique,
        ),
    )
    # Emulate a converged policy: concentrate every decision.
    for logit in search.controller.policy.logits:
        logit[0] = CONVERGED_LOGIT
    return search


def supernet_seconds(stats):
    return stats.stage_seconds["score"] + stats.stage_seconds["weight_update"]


def run_grouping(steps=SEARCH_STEPS, cores=CORES):
    """Part B: unique-arch grouped supernet passes vs. per-core passes."""
    grouped = build_search(group_unique=True, steps=steps, cores=cores).run()
    ungrouped = build_search(group_unique=False, steps=steps, cores=cores).run()
    # Same converged policy and seed => the same search trajectory.
    assert np.allclose(
        [r.mean_quality for r in grouped.history],
        [r.mean_quality for r in ungrouped.history],
        atol=1e-3,
    )
    return {
        "steps": steps,
        "cores": cores,
        "grouped_supernet_seconds": supernet_seconds(grouped.eval_stats),
        "ungrouped_supernet_seconds": supernet_seconds(ungrouped.eval_stats),
        "speedup": supernet_seconds(ungrouped.eval_stats)
        / max(supernet_seconds(grouped.eval_stats), 1e-12),
        "grouped_stage_seconds": dict(grouped.eval_stats.stage_seconds),
        "ungrouped_stage_seconds": dict(ungrouped.eval_stats.stage_seconds),
    }


def run(shard_candidates=SHARD_CANDIDATES, steps=SEARCH_STEPS, cores=CORES):
    pricing = run_pricing(shard_candidates)
    grouping = run_grouping(steps, cores)
    table = format_table(
        ["path", "batched", "sequential", "speedup"],
        [
            [
                f"MLP pricing, cold shard of {pricing['shard_candidates']}"
                " (candidates/s)",
                f"{pricing['batched_throughput']:.0f}",
                f"{pricing['sequential_throughput']:.0f}",
                f"{pricing['speedup']:.1f}x",
            ],
            [
                f"supernet score+update, {grouping['steps']} steps x "
                f"{grouping['cores']} cores (s)",
                f"{grouping['grouped_supernet_seconds']:.2f}",
                f"{grouping['ungrouped_supernet_seconds']:.2f}",
                f"{grouping['speedup']:.1f}x",
            ],
        ],
    )
    emit("batched_exec", table)
    emit_json("batched_exec", {"pricing": pricing, "grouping": grouping})
    return pricing, grouping


def test_batched_exec(benchmark):
    pricing, grouping = benchmark.pedantic(run, rounds=1, iterations=1)
    # Acceptance: >= 3x price-stage throughput on a cold-cache shard.
    assert pricing["speedup"] >= 3.0, f"pricing speedup only {pricing['speedup']:.2f}x"
    # Acceptance: measurable wall-clock reduction from unique-arch grouping.
    assert grouping["speedup"] >= 1.2, f"grouping speedup only {grouping['speedup']:.2f}x"
