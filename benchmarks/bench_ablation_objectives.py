"""Ablation: ReLU vs absolute reward as the objective count grows.

Section 6.1: "While this design difference does not result in different
optimization results when using only one performance objective, our
ReLU reward function achieves much better results in the presence of
multiple performance objectives."

We verify both halves analytically over a large sample of candidates
(reward-landscape comparison, free of RL noise):

* with one objective whose target sits at the feasibility boundary of
  the sampled candidates, the two rewards rank candidates identically
  in the region that matters (all candidates at/above target);
* with two or three objectives, the candidate maximizing the absolute
  reward is dominated — the ReLU argmax is at least as good on every
  objective and strictly better on quality or performance — because
  the absolute reward pays a penalty for over-achieving one target
  while meeting another.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import PerformanceObjective, absolute_reward, relu_reward
from repro.models import baseline_production_dlrm
from repro.models.dlrm import apply_architecture
from repro.models.timing import DlrmTimingHarness
from repro.quality import DlrmQualityModel
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

from .common import emit, emit_json

NUM_TABLES = 3
NUM_CANDIDATES = 400
QUALITY_WEIGHT = 2.0


def sample_candidates():
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    baseline = baseline_production_dlrm(num_tables=NUM_TABLES)
    harness = DlrmTimingHarness(baseline, seed=0)
    quality_model = DlrmQualityModel(baseline)
    rng = np.random.default_rng(0)
    candidates = []
    for _ in range(NUM_CANDIDATES):
        arch = space.sample(rng)
        train_time, serve_time = harness.simulate(arch)
        candidates.append(
            {
                "quality": QUALITY_WEIGHT
                * quality_model.quality(apply_architecture(baseline, arch)),
                "train_step_time": train_time,
                "serving_latency": serve_time,
                "model_size": harness.model_size(arch),
            }
        )
    base_arch = space.default_architecture()
    train_time, serve_time = harness.simulate(base_arch)
    base = {
        "train_step_time": train_time,
        "serving_latency": serve_time,
        "model_size": harness.model_size(base_arch),
    }
    return candidates, base


def objectives_for(count: int, base) -> list:
    objectives = [
        PerformanceObjective("train_step_time", base["train_step_time"], beta=-3.0)
    ]
    if count >= 2:
        objectives.append(
            PerformanceObjective("model_size", base["model_size"], beta=-3.0)
        )
    if count >= 3:
        objectives.append(
            PerformanceObjective("serving_latency", base["serving_latency"], beta=-3.0)
        )
    return objectives


def argmax_candidate(candidates, reward_fn):
    return max(candidates, key=lambda c: reward_fn(c["quality"], c))


def dominates_or_equal(a, b, metrics) -> bool:
    """True when candidate ``a`` is >= ``b`` on quality and <= on costs."""
    if a["quality"] < b["quality"] - 1e-12:
        return False
    return all(a[m] <= b[m] * (1 + 1e-12) for m in metrics)


def run():
    candidates, base = sample_candidates()
    rows = []
    outcomes = {}
    for count in (1, 2, 3):
        objectives = objectives_for(count, base)
        relu_fn = relu_reward(objectives)
        abs_fn = absolute_reward(objectives)
        best_relu = argmax_candidate(candidates, relu_fn)
        best_abs = argmax_candidate(candidates, abs_fn)
        metrics = [o.metric for o in objectives]
        outcomes[count] = {
            "same_argmax": best_relu is best_abs,
            "relu_dominates": dominates_or_equal(best_relu, best_abs, metrics),
            "abs_dominates": dominates_or_equal(best_abs, best_relu, metrics),
            "best_relu": best_relu,
            "best_abs": best_abs,
        }
        rows.append(
            [
                count,
                outcomes[count]["same_argmax"],
                outcomes[count]["relu_dominates"],
                f"{best_relu['quality'] / QUALITY_WEIGHT:.3f}",
                f"{best_abs['quality'] / QUALITY_WEIGHT:.3f}",
                f"{best_relu['train_step_time'] * 1e3:.2f}",
                f"{best_abs['train_step_time'] * 1e3:.2f}",
            ]
        )
    table = format_table(
        ["#objectives", "same argmax", "relu argmax dominates", "q relu", "q abs",
         "t relu (ms)", "t abs (ms)"],
        rows,
    )
    emit("ablation_objectives", table)
    emit_json("ablation_objectives", {"outcomes": outcomes})
    return outcomes


def test_ablation_objectives(benchmark):
    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    for count in (2, 3):
        o = outcomes[count]
        # The absolute argmax never dominates the ReLU argmax...
        assert o["same_argmax"] or not o["abs_dominates"]
        # ...and the ReLU pick matches its quality while being at least
        # as fast on the primary (training-time) objective.
        assert o["best_relu"]["quality"] >= o["best_abs"]["quality"] - 1e-9
        assert (
            o["best_relu"]["train_step_time"]
            <= o["best_abs"]["train_step_time"] * (1 + 1e-9)
        )
    # The rewards genuinely diverge with multiple objectives, and where
    # they do the ReLU pick is strictly faster at no quality cost.
    diverging = [c for c in (2, 3) if not outcomes[c]["same_argmax"]]
    assert diverging
    for count in diverging:
        o = outcomes[count]
        assert o["best_relu"]["train_step_time"] < o["best_abs"]["train_step_time"]
    # Single objective: if the argmaxes differ, the ReLU one still
    # dominates (the divergence can only favour over-achievers).
    assert outcomes[1]["same_argmax"] or outcomes[1]["relu_dominates"]
