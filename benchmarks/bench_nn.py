"""Autograd hot-path contract: tape reuse + fused kernels >= 1.5x.

The search hot loop spends its step budget inside ``repro.nn``: one
supernet forward, one backward, one optimizer step per core group.
This benchmark times that exact train step on the DLRM super-network in
two configurations:

* **baseline** — the pre-overhaul path: composed multi-node layers
  (``FUSED_KERNELS`` off) with the graph rebuilt eagerly every step
  (``REPRO_TAPE=0``);
* **optimized** — fused single-node kernels with per-architecture
  compiled-graph replay (the defaults).

Asserted contract: the optimized step is >= 1.5x faster, and the two
configurations train identically (same losses to float64 round-off —
the kernels evaluate the same expressions, fusion only removes Python
graph construction and intermediate allocations).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.data import CtrTaskConfig, CtrTeacher
from repro.nn import Adam
from repro.nn import layers as nn_layers
from repro.nn.tape import TAPE_ENV
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig

from .common import emit, emit_json

pytestmark = pytest.mark.slow

NUM_TABLES = 4
BATCH_SIZE = 64
NUM_ARCHS = 4      # rotating sampled architectures, as a converging search sees
WARMUP_STEPS = 8   # covers every (arch, shape) graph compile
TIMED_STEPS = 80
MIN_SPEEDUP = 1.5


def _train_steps(monkeypatch_env, fused: bool, tape: bool):
    """Per-step seconds + per-step losses of the supernet train step."""
    import os

    os.environ[TAPE_ENV] = "1" if tape else "0"
    saved_fused = nn_layers.FUSED_KERNELS
    nn_layers.FUSED_KERNELS = fused
    try:
        space = dlrm_search_space(
            DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2)
        )
        rng = np.random.default_rng(11)
        archs = [space.sample(rng) for _ in range(NUM_ARCHS)]
        teacher = CtrTeacher(
            CtrTaskConfig(num_tables=NUM_TABLES, batch_size=BATCH_SIZE, seed=5)
        )
        batches = [teacher.next_batch() for _ in range(WARMUP_STEPS + TIMED_STEPS)]
        net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=3))
        optimizer = Adam(net.parameters(), lr=1e-3)

        losses = []
        elapsed = 0.0
        for step, batch in enumerate(batches):
            arch = archs[step % NUM_ARCHS]
            started = time.perf_counter()
            optimizer.zero_grad()
            loss = net.loss(arch, batch.inputs, batch.labels)
            loss.backward()
            optimizer.step()
            step_seconds = time.perf_counter() - started
            if step >= WARMUP_STEPS:
                elapsed += step_seconds
            losses.append(loss.item())
        return elapsed / TIMED_STEPS, losses
    finally:
        nn_layers.FUSED_KERNELS = saved_fused
        os.environ.pop(TAPE_ENV, None)


def run():
    baseline_step, baseline_losses = _train_steps(None, fused=False, tape=False)
    optimized_step, optimized_losses = _train_steps(None, fused=True, tape=True)

    # Fusion and replay must not change what is computed: the same
    # NumPy expressions run in the same order, so the training curves
    # agree to float64 round-off.
    np.testing.assert_allclose(
        baseline_losses, optimized_losses, rtol=1e-9, atol=1e-12
    )

    payload = {
        "num_tables": NUM_TABLES,
        "batch_size": BATCH_SIZE,
        "num_archs": NUM_ARCHS,
        "timed_steps": TIMED_STEPS,
        "baseline_step_ms": 1e3 * baseline_step,
        "optimized_step_ms": 1e3 * optimized_step,
        "speedup": baseline_step / max(optimized_step, 1e-12),
        "min_speedup": MIN_SPEEDUP,
        "losses_match": True,
    }
    table = format_table(
        ["configuration", "per step (ms)", "speedup"],
        [
            ["composed + eager rebuild", f"{payload['baseline_step_ms']:.2f}", "1.0x"],
            [
                "fused + tape replay",
                f"{payload['optimized_step_ms']:.2f}",
                f"{payload['speedup']:.2f}x",
            ],
        ],
    )
    emit("nn_hot_path", table)
    emit_json("nn_hot_path", payload)
    return payload


def test_nn_hot_path(benchmark):
    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"tape+fused train step only {payload['speedup']:.2f}x over the "
        f"composed eager path (contract: >= {MIN_SPEEDUP}x)"
    )
