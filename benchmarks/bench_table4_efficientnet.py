"""Table 4: geometric-mean speedups of EfficientNet-H over EfficientNet-X.

The family-wide geomean is diluted because B0-B4 are unchanged; the
B5-B7 sub-family shows the real ~15% gains.  Speedups are reported for
training on TPUv4, serving on TPUv4i, and serving on V100, as in the
paper (5%/6%/6% family-wide, 14%/16%/17% for B5-B7).
"""

from __future__ import annotations

from repro.analysis import format_table, geometric_mean
from repro.hardware import GPU_V100, TPU_V4, TPU_V4I, simulate
from repro.models import EFFICIENTNET_H, EFFICIENTNET_X
from repro.models.efficientnet import build_graph
from repro.quality import efficientnet_quality

from .common import emit, emit_json

TRAIN_BATCH = 64
SERVE_BATCH = 8
MEMBERS = tuple(f"b{i}" for i in range(8))
BIG_MEMBERS = ("b5", "b6", "b7")


def member_speedups(member: str):
    base, searched = EFFICIENTNET_X[member], EFFICIENTNET_H[member]
    speedups = {}
    for label, hw, batch in (
        ("train_tpu_v4", TPU_V4, TRAIN_BATCH),
        ("serve_tpu_v4i", TPU_V4I, SERVE_BATCH),
        ("serve_gpu_v100", GPU_V100, SERVE_BATCH),
    ):
        t_base = simulate(build_graph(base, batch=batch), hw).total_time_s
        t_h = simulate(build_graph(searched, batch=batch), hw).total_time_s
        speedups[label] = t_base / t_h
    speedups["quality_delta"] = efficientnet_quality(searched) - efficientnet_quality(base)
    return speedups


def run():
    per_member = {m: member_speedups(m) for m in MEMBERS}
    summary = {}
    for label in ("train_tpu_v4", "serve_tpu_v4i", "serve_gpu_v100"):
        summary[label] = {
            "family": geometric_mean([per_member[m][label] for m in MEMBERS]),
            "b5_b7": geometric_mean([per_member[m][label] for m in BIG_MEMBERS]),
        }
    rows = [
        [m] + [f"{per_member[m][l]:.3f}" for l in ("train_tpu_v4", "serve_tpu_v4i", "serve_gpu_v100")]
        + [f"{per_member[m]['quality_delta']:+.2f}"]
        for m in MEMBERS
    ]
    table = format_table(
        ["model", "train TPUv4", "serve TPUv4i", "serve V100", "quality delta"], rows
    )
    table += "\n\n" + format_table(
        ["geomean", "train TPUv4 (paper 5%/14%)", "serve TPUv4i (6%/16%)", "serve V100 (6%/17%)"],
        [
            ["family (B0-B7)"]
            + [f"{summary[l]['family']:.3f}" for l in ("train_tpu_v4", "serve_tpu_v4i", "serve_gpu_v100")],
            ["B5-B7"]
            + [f"{summary[l]['b5_b7']:.3f}" for l in ("train_tpu_v4", "serve_tpu_v4i", "serve_gpu_v100")],
        ],
    )
    emit("table4_efficientnet", table)
    emit_json("table4_efficientnet", {"per_member": per_member, "summary": summary})
    return per_member, summary


def test_table4_efficientnet(benchmark):
    per_member, summary = benchmark.pedantic(run, rounds=1, iterations=1)
    # B0-B4 are identical to the baseline: no speedup.
    for m in ("b0", "b1", "b2", "b3", "b4"):
        for label in ("train_tpu_v4", "serve_tpu_v4i", "serve_gpu_v100"):
            assert abs(per_member[m][label] - 1.0) < 1e-9
    # B5-B7 gain double-digit percent on every platform (paper ~14-17%).
    for label in ("train_tpu_v4", "serve_tpu_v4i", "serve_gpu_v100"):
        assert 1.05 < summary[label]["b5_b7"] < 1.45
        # Family-wide geomean is diluted but positive (paper 5-6%).
        assert 1.01 < summary[label]["family"] < summary[label]["b5_b7"]
    # Quality stays neutral.
    for m in MEMBERS:
        assert abs(per_member[m]["quality_delta"]) < 0.3
