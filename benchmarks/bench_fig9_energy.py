"""Figure 9: performance, power, and energy of the H2O-NAS families.

For EfficientNet-H, CoAtNet-H, and DLRM-H, normalized to their
baselines (geometric mean across family members).  Claims reproduced:
every searched family saves substantial energy; the faster CoAtNet-H
and DLRM-H models do NOT draw more power despite their speed (the
counter-intuitive headline), because the speedup comes from cutting
compute load and off-chip traffic rather than raising utilization;
EfficientNet-H's savings come purely from running shorter.
"""

from __future__ import annotations

from repro.analysis import format_table, geometric_mean
from repro.hardware import TPU_V4, power_report, simulate
from repro.models import (
    COATNET,
    COATNET_H,
    EFFICIENTNET_H,
    EFFICIENTNET_X,
    baseline_production_dlrm,
    dlrm_h,
)
from repro.models import coatnet, dlrm, efficientnet

from .common import emit, emit_json

PAPER = {
    "efficientnet_h": {"performance": 1.06, "power": 1.00, "energy": 0.94},
    "coatnet_h": {"performance": 1.54, "power": 0.85, "energy": 0.54},
    "dlrm_h": {"performance": 1.10, "power": 0.93, "energy": 0.85},
}


def _ratios(pairs, build):
    perf, power, energy = [], [], []
    for base_cfg, h_cfg in pairs:
        r_base = simulate(build(base_cfg), TPU_V4)
        r_h = simulate(build(h_cfg), TPU_V4)
        p_base = power_report(r_base, TPU_V4)
        p_h = power_report(r_h, TPU_V4)
        perf.append(r_base.total_time_s / r_h.total_time_s)
        power.append(p_h.power_w / p_base.power_w)
        energy.append(p_h.energy_j / p_base.energy_j)
    return {
        "performance": geometric_mean(perf),
        "power": geometric_mean(power),
        "energy": geometric_mean(energy),
    }


def run():
    results = {}
    results["efficientnet_h"] = _ratios(
        [(EFFICIENTNET_X[m], EFFICIENTNET_H[m]) for m in ("b5", "b6", "b7")],
        lambda cfg: efficientnet.build_graph(cfg, batch=64),
    )
    results["coatnet_h"] = _ratios(
        [(COATNET[i], COATNET_H[i]) for i in ("3", "4", "5")],
        lambda cfg: coatnet.build_graph(cfg, batch=64),
    )
    base_dlrm = baseline_production_dlrm()
    results["dlrm_h"] = _ratios(
        [(base_dlrm, dlrm_h(base_dlrm))], dlrm.build_graph
    )
    table = format_table(
        ["family", "speedup (ours/paper)", "power ratio (ours/paper)", "energy ratio (ours/paper)"],
        [
            [
                name,
                f"{r['performance']:.2f}/{PAPER[name]['performance']:.2f}",
                f"{r['power']:.2f}/{PAPER[name]['power']:.2f}",
                f"{r['energy']:.2f}/{PAPER[name]['energy']:.2f}",
            ]
            for name, r in results.items()
        ],
    )
    emit("fig9_energy", table)
    emit_json("fig9_energy", {"results": results})
    return results


def test_fig9_energy(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, r in results.items():
        # Every searched family is faster and saves energy.
        assert r["performance"] > 1.0
        assert r["energy"] < 1.0
        # The counter-intuitive claim: faster models draw no extra power
        # (within a few percent).
        assert r["power"] < 1.06
    # CoAtNet-H has the largest gains, DLRM-H/EfficientNet-H moderate.
    assert results["coatnet_h"]["energy"] < results["dlrm_h"]["energy"]
    assert 1.02 < results["dlrm_h"]["performance"] < 1.3
