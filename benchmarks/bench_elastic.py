"""Once-for-all amortization: specialize per target vs search per target.

The elastic workflow's economic claim: after one elastic training, each
additional hardware target costs a *policy-only* specialization instead
of a full train-while-search run.  The two runs need different horizons
by construction — a full per-target search trains its supernet weights
from scratch while searching, so it needs the quickstart's full horizon
(60 steps, 10 of them warmup before the policy even updates), while a
specialization searches against *stationary* quality and pricing (the
frozen artifact) and needs only a short policy-convergence horizon.
This benchmark runs both ways of covering the registered fleet (every
platform in ``hardware.config.PLATFORMS``) and asserts the contract
pinned in nightly CI: per additional target, specialization is **>= 5x
cheaper** in wall-clock than the full per-target search — and that the
short specialization horizon is not vacuous (its policy measurably
converges: entropy drops, reward is live).

Trajectory equivalence is not asserted here (the two approaches search
different things by design); bit-identity of the elastic workflow
itself is covered by ``tests/test_crash_resume.py`` and
``tests/test_elastic.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import format_table
from repro.core import SearchConfig, SingleStepSearch, relu_reward
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline
from repro.hardware import PLATFORMS
from repro.runtime import save_elastic_artifact
from repro.service.jobs import (
    elastic_training_builder,
    platform_performance_fn,
    specialization_builder,
)
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig

from .common import emit, emit_json

pytestmark = pytest.mark.slow

#: the quickstart horizon: what one full per-target run costs (weights
#: trained from scratch while searching, 10 warmup steps included)
FULL_STEPS = 60
FULL_WARMUP = 10
#: one-time elastic training uses the same weight-training horizon
ELASTIC_STEPS = 60
#: policy-only convergence horizon against stationary rewards
SPEC_STEPS = 10
SEED = 0
#: the nightly contract: one specialization must be at least this much
#: cheaper than one full per-target search
MIN_SPEEDUP = 5.0


def build_full_search(space, platform_name):
    """A conventional per-target run: weights and policy trained jointly."""
    _, performance_fn, objectives = platform_performance_fn(space, platform_name)
    teacher = CtrTeacher(CtrTaskConfig(num_tables=2, batch_size=64, seed=SEED))
    return SingleStepSearch(
        space=space,
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=2, seed=SEED)),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward(objectives),
        performance_fn=performance_fn,
        config=SearchConfig(
            steps=FULL_STEPS, num_cores=4, warmup_steps=FULL_WARMUP, seed=SEED
        ),
    )


def run_elastic_amortization(tmp_path):
    space, schedule, factory = elastic_training_builder(ELASTIC_STEPS, SEED)
    training = factory()
    start = time.perf_counter()
    training.run()
    train_s = time.perf_counter() - start
    artifact_dir = tmp_path / "artifact"
    save_elastic_artifact(
        artifact_dir, training.supernet, space, schedule,
        trained_steps=ELASTIC_STEPS, seed=SEED,
    )

    rows = []
    for name in PLATFORMS:
        start = time.perf_counter()
        result = build_full_search(space, name).run()
        full_s = time.perf_counter() - start
        full_arch = result.final_architecture

        _, spec_factory = specialization_builder(
            artifact_dir, name, SPEC_STEPS, SEED
        )
        start = time.perf_counter()
        spec_result = spec_factory().run()
        spec_s = time.perf_counter() - start
        entropies = spec_result.entropies()
        rows.append(
            {
                "platform": name,
                "full_search_s": full_s,
                "specialize_s": spec_s,
                "speedup": full_s / spec_s,
                "spec_entropy_initial": float(entropies[0]),
                "spec_entropy_final": float(entropies[-1]),
                "spec_final_reward": float(spec_result.rewards()[-1]),
                "full_arch": [int(i) for i in space.indices_of(full_arch)],
                "specialized_arch": [
                    int(i)
                    for i in space.indices_of(spec_result.final_architecture)
                ],
            }
        )
    return train_s, rows


def test_specialization_amortizes_fleet(tmp_path):
    train_s, rows = run_elastic_amortization(tmp_path)
    num_targets = len(rows)
    full_total = sum(r["full_search_s"] for r in rows)
    spec_total = sum(r["specialize_s"] for r in rows)

    text = format_table(
        ["platform", "full search s", "specialize s", "speedup"],
        [
            [r["platform"], f"{r['full_search_s']:.2f}",
             f"{r['specialize_s']:.2f}", f"{r['speedup']:.1f}x"]
            for r in rows
        ],
    )
    text += (
        f"\nelastic training (once, {ELASTIC_STEPS} steps): {train_s:.2f}s"
        f"\nfleet of {num_targets}: full-search total {full_total:.2f}s"
        f" vs train-once + specialize {train_s + spec_total:.2f}s"
    )
    emit("bench_elastic", text)
    emit_json(
        "bench_elastic",
        {
            "full_steps": FULL_STEPS,
            "spec_steps": SPEC_STEPS,
            "elastic_steps": ELASTIC_STEPS,
            "train_once_s": train_s,
            "targets": rows,
            "min_speedup_contract": MIN_SPEEDUP,
        },
    )

    for row in rows:
        # The short horizon is a real search, not a no-op: the policy
        # sharpens against the frozen artifact's stationary rewards.
        assert row["spec_entropy_final"] < row["spec_entropy_initial"], (
            f"{row['platform']}: specialization policy did not converge"
        )
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{row['platform']}: specialization only "
            f"{row['speedup']:.1f}x cheaper than a full search "
            f"(contract: >= {MIN_SPEEDUP}x)"
        )
    # The amortization direction the paper's economics rest on: covering
    # the fleet from one artifact beats per-target full searches.
    assert train_s + spec_total < full_total
