"""Ablation: performance-model accuracy vs fine-tuning sample count.

Table 1 fixes the fine-tuning budget at ~20 hardware measurements; this
ablation sweeps 0..40 samples and shows (a) a steep accuracy gain from
the first handful of measurements (the simulator-vs-hardware gap is
systematic, so few points pin it down), and (b) diminishing returns
beyond ~20 — justifying the paper's O(20) choice.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.analysis import format_table
from repro.models import baseline_production_dlrm
from repro.models.timing import DlrmTimingHarness
from repro.perfmodel import (
    ArchitectureEncoder,
    PerformanceModel,
    TwoPhaseConfig,
    TwoPhaseTrainer,
)
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

from .common import emit, emit_json

NUM_TABLES = 4
PRETRAIN_SAMPLES = 3000
SAMPLE_COUNTS = (0, 5, 10, 20, 40)
EVAL_SAMPLES = 200


def run():
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    harness = DlrmTimingHarness(baseline_production_dlrm(num_tables=NUM_TABLES), seed=0)
    model = PerformanceModel(
        ArchitectureEncoder(space), hidden_sizes=(256, 256), size_fn=harness.model_size, seed=0
    )
    trainer = TwoPhaseTrainer(
        model,
        space,
        simulate_fn=harness.simulate,
        measure_fn=harness.measure,
        config=TwoPhaseConfig(pretrain_epochs=50, finetune_epochs=200, finetune_lr=5e-5),
        seed=0,
    )
    trainer.pretrain(PRETRAIN_SAMPLES)
    snapshot = [p.data.copy() for p in model.parameters()]
    norm_snapshot = (model.log_mean.copy(), model.log_std.copy())
    curve = {}
    for count in SAMPLE_COUNTS:
        for param, saved in zip(model.parameters(), snapshot):
            param.data[:] = saved.copy()
        model.set_normalization(*[v.copy() for v in norm_snapshot])
        trainer._rng = np.random.default_rng(123)
        if count > 0:
            trainer.finetune(count)
        trainer._rng = np.random.default_rng(7)
        nrmse_train, _ = trainer.evaluate(EVAL_SAMPLES, harness.measure_deterministic)
        curve[count] = nrmse_train
    table = format_table(
        ["finetune samples", "NRMSE vs hardware"],
        [[count, f"{value:.2%}"] for count, value in curve.items()],
    )
    emit("ablation_finetune", table)
    emit_json("ablation_finetune", {"curve": curve})
    return curve


def test_ablation_finetune(benchmark):
    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    # Without fine-tuning the model carries the full systematic gap.
    assert curve[0] > 0.10
    # A handful of measurements removes most of it...
    assert curve[10] < curve[0] / 2
    # ...20 reaches the target band...
    assert curve[20] < 0.10
    # ...and 40 adds little beyond 20 (diminishing returns).
    assert curve[40] > curve[20] * 0.4
