"""Table 2: model characteristics and hardware configurations.

Regenerates the parameter-count and FLOP ranges of the three domains
(ViT/CoAtNet, DLRM, CNN/EfficientNet-X) from the implemented model
families, together with the training/serving hardware assignment.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.models import COATNET, EFFICIENTNET_X, baseline_production_dlrm
from repro.models import coatnet, dlrm, efficientnet

from .common import emit, emit_json


def family_ranges():
    coatnet_params = [coatnet.num_params(c) / 1e6 for c in COATNET.values()]
    coatnet_flops = [
        coatnet.build_graph(c, batch=1).total_flops / 1e9 for c in COATNET.values()
    ]
    enet_params = [efficientnet.num_params(c) / 1e6 for c in EFFICIENTNET_X.values()]
    enet_flops = [
        efficientnet.build_graph(c, batch=1).total_flops / 1e9
        for c in EFFICIENTNET_X.values()
    ]
    dlrm_spec = baseline_production_dlrm()
    return {
        "vit": {
            "params_m": (min(coatnet_params), max(coatnet_params)),
            "flops_b": (min(coatnet_flops), max(coatnet_flops)),
        },
        "dlrm": {
            "params_m": (dlrm.num_params(dlrm_spec) / 1e6,) * 2,
            "flops_b": (
                dlrm.build_graph(dlrm_spec).total_flops / 1e9,
            )
            * 2,
        },
        "cnn": {
            "params_m": (min(enet_params), max(enet_params)),
            "flops_b": (min(enet_flops), max(enet_flops)),
        },
    }


PAPER_ROWS = {
    "vit": {"params_m": (25, 688), "flops_b": (8.4, 1060)},
    "dlrm": {"params_m": (1000, 1000), "flops_b": (100, 100)},
    "cnn": {"params_m": (7.6, 199), "flops_b": (1.8, 186)},
}


def run():
    ranges = family_ranges()
    rows = []
    for domain, stats in ranges.items():
        rows.append(
            [
                domain,
                f"{stats['params_m'][0]:.1f}~{stats['params_m'][1]:.1f}",
                f"{stats['flops_b'][0]:.1f}~{stats['flops_b'][1]:.1f}",
                "128 TPUv4",
                "1 TPUv4i",
                "training",
            ]
        )
    table = format_table(
        ["domain", "params (M)", "FLOPs (B)", "training HW", "serving HW", "dominant cost"],
        rows,
    )
    emit("table2_domains", table)
    emit_json("table2_domains", {"ranges": ranges})
    return ranges


def test_table2_domains(benchmark):
    ranges = benchmark.pedantic(run, rounds=1, iterations=1)
    # ViT family spans tens-of-millions to ~700M params as in the paper.
    assert ranges["vit"]["params_m"][0] < 60
    assert 500 < ranges["vit"]["params_m"][1] < 800
    # DLRM is O(1000M) parameters.
    assert 500 < ranges["dlrm"]["params_m"][0] < 3000
    # CNN family is far smaller than the ViT family.
    assert ranges["cnn"]["params_m"][1] < ranges["vit"]["params_m"][1]
