"""Ablation: why single-step unified learning needs plentiful data.

Section 4.1: without separate train/validation sets, "NAS trains shared
model weights W with the same data used for evaluating the choices of
alpha ..., resulting in over-fitting", so "two-step learning is still
needed for small-scale research datasets".

We quantify the mechanism: train the DLRM super-network on a small
fixed pool of batches (heavy reuse, the research regime) and on a fresh
stream (the production regime), then compare each network's quality
estimate on its *training* data vs. on fresh data.  Heavy reuse
produces an optimistic bias — exactly the signal that would mislead the
policy if alpha were learned from reused data — while the streaming
regime shows no such bias, which is why H2O-NAS may legally unify the
two learning steps on production traffic.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.data import CtrTaskConfig, CtrTeacher
from repro.nn import Adam
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig

from .common import emit, emit_json

NUM_TABLES = 2
STEPS = 500
POOL_SIZES = (5, 20, None)  # None = fresh stream (production regime)
TASK = dict(
    num_tables=NUM_TABLES,
    batch_size=64,
    memorization_weight=2.0,
    generalization_weight=0.3,
)


def train_regime(pool_size, seed=0):
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    arch = space.default_architecture()
    net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed))
    teacher = CtrTeacher(CtrTaskConfig(seed=1, **TASK))
    pool = [teacher.next_batch() for _ in range(pool_size)] if pool_size else None
    optimizer = Adam(net.parameters(), lr=0.01)
    for step in range(STEPS):
        batch = pool[step % pool_size] if pool else teacher.next_batch()
        optimizer.zero_grad()
        net.loss(arch, batch.inputs, batch.labels).backward()
        optimizer.step()
    # Quality on the data the weights trained on...
    if pool:
        train_batches = pool
    else:
        # fresh-stream regime: "training data" is a sample of batches
        # statistically identical to what was consumed (each was seen once).
        train_batches = [teacher.next_batch() for _ in range(10)]
    train_quality = float(
        np.mean([net.quality(arch, b.inputs, b.labels) for b in train_batches])
    )
    # ...vs. on genuinely fresh data from the same distribution.
    fresh_batches = [teacher.next_batch() for _ in range(10)]
    fresh_quality = float(
        np.mean([net.quality(arch, b.inputs, b.labels) for b in fresh_batches])
    )
    return {
        "train_quality": train_quality,
        "fresh_quality": fresh_quality,
        "bias": train_quality - fresh_quality,
    }


def run():
    results = {}
    for pool_size in POOL_SIZES:
        label = f"pool of {pool_size}" if pool_size else "fresh stream"
        per_seed = [train_regime(pool_size, seed) for seed in (0, 1)]
        results[label] = {
            key: float(np.mean([r[key] for r in per_seed]))
            for key in ("train_quality", "fresh_quality", "bias")
        }
    table = format_table(
        ["data regime", "quality on training data", "quality on fresh data", "optimism bias"],
        [
            [label, f"{r['train_quality']:.3f}", f"{r['fresh_quality']:.3f}", f"{r['bias']:+.3f}"]
            for label, r in results.items()
        ],
    )
    emit("ablation_data_reuse", table)
    emit_json("ablation_data_reuse", {"results": results})
    return results


def test_ablation_data_reuse(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    tiny = results["pool of 5"]
    fresh = results["fresh stream"]
    # Heavy reuse inflates quality estimates on the training data.
    assert tiny["bias"] > 0.05
    # The streaming regime is essentially unbiased (single-step is safe).
    assert abs(fresh["bias"]) < 0.05
    # And reuse hurts true generalization relative to streaming.
    assert fresh["fresh_quality"] >= tiny["fresh_quality"] - 0.02
