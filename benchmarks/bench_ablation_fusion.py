"""Ablation: compiler-pass (op fusion) impact in the simulator.

Section 6.2.3: when fed an unoptimized graph, the paper's simulator
"simulates compiler optimizations such as op/layer fusion".  This
ablation quantifies what that modelling is worth: across the three
model families, XLA-style elementwise fusion removes the activation
tensors' write+read round-trips — a few percent of step time for
compute-bound models, more for op-rich memory-bound ones — without
changing total FLOPs.  Skipping the passes would bias the performance
model's pretraining data pessimistic by exactly this margin.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.graph import passes
from repro.hardware import TPU_V4, simulate
from repro.models import COATNET, EFFICIENTNET_X, baseline_production_dlrm
from repro.models import coatnet, dlrm, efficientnet

from .common import emit, emit_json


def family_graphs():
    return {
        "coatnet_2": coatnet.build_graph(COATNET["2"], batch=32),
        "efficientnet_b4": efficientnet.build_graph(EFFICIENTNET_X["b4"], batch=32),
        "dlrm": dlrm.build_graph(baseline_production_dlrm(num_tables=8)),
    }


def run():
    stats = {}
    for name, graph in family_graphs().items():
        optimized = passes.optimize(graph)
        raw = simulate(graph, TPU_V4)
        fused = simulate(optimized, TPU_V4)
        stats[name] = {
            "ops_before": len(graph),
            "ops_after": len(optimized),
            "flops_conserved": abs(optimized.total_flops - graph.total_flops) < 1e-6,
            "time_ratio": fused.total_time_s / raw.total_time_s,
            "bytes_ratio": optimized.total_bytes / graph.total_bytes,
        }
    table = format_table(
        ["model", "ops before", "ops after", "bytes ratio", "time ratio", "FLOPs conserved"],
        [
            [
                name,
                s["ops_before"],
                s["ops_after"],
                f"{s['bytes_ratio']:.3f}",
                f"{s['time_ratio']:.3f}",
                s["flops_conserved"],
            ]
            for name, s in stats.items()
        ],
    )
    emit("ablation_fusion", table)
    emit_json("ablation_fusion", {"stats": stats})
    return stats


def test_ablation_fusion(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, s in stats.items():
        # Fusion only removes work: fewer ops, less traffic, same FLOPs.
        assert s["ops_after"] < s["ops_before"]
        assert s["bytes_ratio"] < 1.0
        assert s["flops_conserved"]
        # Never slower, and measurably faster somewhere.
        assert s["time_ratio"] <= 1.0 + 1e-9
    assert min(s["time_ratio"] for s in stats.values()) < 0.99
