"""Figure 2: unified single-step search vs TuNAS-style alternation.

Both algorithms search the same small DLRM super-network on the same
synthetic production traffic, with the same compute per step.  Claims
reproduced:

* the single-step algorithm consumes every batch exactly once (policy
  before weights — the pipeline enforces it), while the TuNAS baseline
  must reuse its finite train/validation splits across epochs;
* one single-step iteration learns policy and weights together across
  ``num_cores`` parallel shards, and converges (policy entropy falls,
  reward rises) at least as well as the alternating baseline;
* the final architectures from both reach comparable held-out quality.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    TunasSearch,
    relu_reward,
)
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline, TwoStreamPipeline
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig

from .common import emit, emit_json

NUM_TABLES = 2
STEPS = 150
CORES = 4


def capacity_cost(arch):
    cost = 1.0
    for t in range(NUM_TABLES):
        cost += 0.05 * arch[f"emb{t}/width_delta"]
        cost += 0.1 * (arch[f"emb{t}/vocab_scale"] - 1.0)
    for s in range(2):
        cost += 0.04 * arch[f"dense{s}/width_delta"]
        cost += 0.05 * arch[f"dense{s}/depth_delta"]
    return {"step_time": max(0.1, cost)}


def held_out_quality(supernet, arch, seed=999, batches=8):
    teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=64, seed=seed))
    scores = []
    for _ in range(batches):
        batch = teacher.next_batch()
        scores.append(supernet.quality(arch, batch.inputs, batch.labels))
    return float(np.mean(scores))


def run():
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    reward_fn = relu_reward([PerformanceObjective("step_time", 1.0, beta=-0.3)])
    config = SearchConfig(
        steps=STEPS, num_cores=CORES, warmup_steps=15, policy_lr=0.2,
        policy_entropy_coef=0.05, record_candidates=False, seed=0,
    )
    # --- H2O-NAS single-step on streaming traffic ----------------------
    single_net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=0))
    single_pipeline = SingleStepPipeline(
        CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=64, seed=1)).next_batch
    )
    single = SingleStepSearch(
        space, single_net, single_pipeline, reward_fn, capacity_cost, config
    )
    single_result = single.run()
    # --- TuNAS alternation on fixed train/validation splits ------------
    tunas_net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=0))
    tunas_pipeline = TwoStreamPipeline(
        CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=64, seed=1)).next_batch,
        train_batches=40,
        valid_batches=20,
    )
    tunas = TunasSearch(
        space, tunas_net, tunas_pipeline, reward_fn, capacity_cost, config
    )
    tunas_result = tunas.run()
    stats = {
        "single_step": {
            "batches_used": single_result.batches_used,
            "data_reuses": 0,
            "final_entropy": float(single_result.entropies()[-1]),
            "initial_entropy": float(single_result.entropies()[0]),
            "reward_gain": float(
                np.mean(single_result.rewards()[-20:]) - np.mean(single_result.rewards()[:20])
            ),
            "held_out_quality": held_out_quality(single_net, single_result.final_architecture),
        },
        "tunas": {
            "batches_used": tunas_result.batches_used,
            "data_reuses": tunas_pipeline.train_reuses + tunas_pipeline.valid_reuses,
            "final_entropy": float(tunas_result.entropies()[-1]),
            "initial_entropy": float(tunas_result.entropies()[0]),
            "reward_gain": float(
                np.mean(tunas_result.rewards()[-20:]) - np.mean(tunas_result.rewards()[:20])
            ),
            "held_out_quality": held_out_quality(tunas_net, tunas_result.final_architecture),
        },
    }
    table = format_table(
        ["algorithm", "fresh batches", "data reuses", "entropy start->end", "reward gain", "held-out quality"],
        [
            [
                name,
                s["batches_used"],
                s["data_reuses"],
                f"{s['initial_entropy']:.2f}->{s['final_entropy']:.2f}",
                f"{s['reward_gain']:+.3f}",
                f"{s['held_out_quality']:.3f}",
            ]
            for name, s in stats.items()
        ],
    )
    emit("fig2_algorithm", table)
    emit_json("fig2_algorithm", {"stats": stats})
    return stats


def test_fig2_algorithm(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    single, tunas = stats["single_step"], stats["tunas"]
    # Single-step: every batch fresh, consumed exactly once.
    assert single["batches_used"] == STEPS * CORES
    assert single["data_reuses"] == 0
    # TuNAS: finite splits, reused many times across the search.
    assert tunas["batches_used"] == 60
    assert tunas["data_reuses"] >= 5
    # Both converge: entropy falls and reward improves.
    for s in (single, tunas):
        assert s["final_entropy"] < s["initial_entropy"]
    assert single["reward_gain"] > 0
    # Comparable held-out quality — the single-step unification loses
    # nothing when data is plentiful.
    assert single["held_out_quality"] > tunas["held_out_quality"] - 0.08
    assert single["held_out_quality"] > 0.55  # well above chance
