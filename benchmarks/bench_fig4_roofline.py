"""Figure 4b/4c: rooflines and latencies of MBConv vs fused MBConv on TPUv4i.

Paper claims reproduced here:
* fused MBConv always has the higher operational intensity and attained
  FLOPS (throughput) — Figure 4b;
* latency depends on throughput *and* total FLOPs, so F-MBC(32) is
  faster than MBC(32) while F-MBC(128) is slower than MBC(128) —
  Figure 4c's crossover.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.hardware import TPU_V4I, roofline_point, simulate
from repro.models import MbconvSpec, single_block_graph

from .common import emit, emit_json

DEPTHS = (16, 32, 64, 96, 128, 192, 256)
RESOLUTION = 56
BATCH = 64


def block_stats(block_type: str, depth: int):
    spec = MbconvSpec(block_type, depth, depth, se_ratio=0.0)
    graph = single_block_graph(spec, RESOLUTION, batch=BATCH)
    result = simulate(graph, TPU_V4I)
    intensity = graph.total_flops / graph.total_bytes
    return {
        "block": f"{'F-MBC' if block_type == 'fused_mbconv' else 'MBC'}({depth})",
        "intensity": intensity,
        "attained_tflops": result.achieved_tflops,
        "latency_ms": result.total_time_s * 1e3,
        "gflops": graph.total_flops / 1e9,
    }


def run():
    rows = []
    for depth in DEPTHS:
        for block_type in ("mbconv", "fused_mbconv"):
            rows.append(block_stats(block_type, depth))
    table = format_table(
        ["block", "op intensity (FLOPs/B)", "attained TFLOP/s", "total GFLOPs", "latency (ms)"],
        [
            [r["block"], r["intensity"], r["attained_tflops"], r["gflops"], r["latency_ms"]]
            for r in rows
        ],
    )
    emit("fig4_roofline", table)
    emit_json("fig4_roofline", {"rows": rows})
    return {r["block"]: r for r in rows}


def test_fig4_roofline(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # Figure 4b: fused blocks always achieve higher intensity + FLOPS.
    for depth in DEPTHS:
        assert stats[f"F-MBC({depth})"]["intensity"] > stats[f"MBC({depth})"]["intensity"]
        assert (
            stats[f"F-MBC({depth})"]["attained_tflops"]
            > stats[f"MBC({depth})"]["attained_tflops"]
        )
    # Figure 4c: the latency crossover between depth 32 and depth 128.
    assert stats["F-MBC(32)"]["latency_ms"] < stats["MBC(32)"]["latency_ms"]
    assert stats["F-MBC(128)"]["latency_ms"] > stats["MBC(128)"]["latency_ms"]
