"""Table 1: quality and two-stage training of the performance model.

A 2-layer, 512-neuron MLP predicts DLRM training (and serving)
performance.  Phase 1 pre-trains on simulator samples; phase 2
fine-tunes on 20 "hardware" measurements from the testbed.

Scaling note: the paper pre-trains on one million samples over the full
O(10^282) space; on CPU we use an 8-table slice of the space and 12k
samples.  The claims reproduced are the table's structure: sub-percent
NRMSE against the pre-training distribution, tens-of-percent NRMSE of
the pre-trained model against hardware, and a ~10x NRMSE reduction to
the low single digits from 20 fine-tuning measurements.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.models import baseline_production_dlrm
from repro.models.timing import DlrmTimingHarness
from repro.perfmodel import (
    ArchitectureEncoder,
    PerformanceModel,
    TwoPhaseConfig,
    TwoPhaseTrainer,
)
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

from .common import emit, emit_json

NUM_TABLES = 8
PRETRAIN_SAMPLES = 10_000
FINETUNE_SAMPLES = 20
EVAL_SAMPLES = 300
#: Simulator-sweep worker threads; the sweep is order-preserving and the
#: simulator deterministic, so the dataset is identical at any count.
NUM_WORKERS = 4


def run():
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    harness = DlrmTimingHarness(baseline_production_dlrm(num_tables=NUM_TABLES), seed=0)
    model = PerformanceModel(
        ArchitectureEncoder(space),
        hidden_sizes=(512, 512),
        size_fn=harness.model_size,
        seed=0,
    )
    trainer = TwoPhaseTrainer(
        model,
        space,
        simulate_fn=harness.simulate,
        measure_fn=harness.measure,
        config=TwoPhaseConfig(
            pretrain_epochs=60,
            finetune_epochs=200,
            finetune_lr=5e-5,
            num_workers=NUM_WORKERS,
        ),
        seed=0,
    )
    pre_report = trainer.pretrain(PRETRAIN_SAMPLES)
    pretrain_on_hw = trainer.evaluate(EVAL_SAMPLES, harness.measure_deterministic)
    trainer.finetune(FINETUNE_SAMPLES)
    finetuned_on_hw = trainer.evaluate(EVAL_SAMPLES, harness.measure_deterministic)
    stats = {
        "space_log10": space.log10_size(),
        "pretrain_samples": PRETRAIN_SAMPLES,
        "nrmse_pretrain_insample": pre_report.nrmse_train_head,
        "finetune_samples": FINETUNE_SAMPLES,
        "nrmse_pretrained_on_hw": pretrain_on_hw[0],
        "nrmse_finetuned_on_hw": finetuned_on_hw[0],
        "nrmse_finetuned_on_hw_serve": finetuned_on_hw[1],
    }
    table = format_table(
        ["row", "ours", "paper"],
        [
            ["search space size (log10)", f"{stats['space_log10']:.1f}", "282 (full space)"],
            ["pretraining samples", stats["pretrain_samples"], "1,000,000"],
            [
                "NRMSE on pretraining samples",
                f"{stats['nrmse_pretrain_insample']:.2%}",
                "0.31% ~ 0.47%",
            ],
            ["finetuning samples", stats["finetune_samples"], "20"],
            [
                "NRMSE of pretrained model on measurements",
                f"{stats['nrmse_pretrained_on_hw']:.2%}",
                "14.7% ~ 42.9%",
            ],
            [
                "NRMSE of finetuned model on measurements",
                f"{stats['nrmse_finetuned_on_hw']:.2%}",
                "1.05% ~ 3.08%",
            ],
        ],
    )
    emit("table1_perfmodel", table)
    emit_json("table1_perfmodel", {"stats": stats})
    return stats


def test_table1_perfmodel(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # Tight fit against the pre-training distribution (paper: <0.5%).
    assert stats["nrmse_pretrain_insample"] < 0.02
    # Big systematic gap against hardware before fine-tuning.
    assert 0.10 < stats["nrmse_pretrained_on_hw"] < 0.60
    # Fine-tuning with 20 measurements lands in the low single digits...
    assert stats["nrmse_finetuned_on_hw"] < 0.06
    assert stats["nrmse_finetuned_on_hw_serve"] < 0.08
    # ...for roughly the 10x improvement Table 1 shows.
    improvement = stats["nrmse_pretrained_on_hw"] / stats["nrmse_finetuned_on_hw"]
    assert improvement > 4.0
