"""Figure 8: DLRM-H training step time, normalized to the baseline DLRM.

Training step time is ``MAX(embedding computing time, DNN computing
time)``.  The baseline production DLRM is MLP-bound (the DNN pipeline
is much longer than the embedding pipeline), which both wastes the idle
embedding pipeline and under-provisions memorization.  The searched
DLRM-H grows embedding capacity into the slack while trimming the MLP
stack: ~10% faster step time with +0.02% quality.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.hardware import TPU_V4, simulate
from repro.models import baseline_production_dlrm, dlrm_h, pipeline_times
from repro.models.dlrm import build_graph
from repro.quality import DlrmQualityModel

from .common import emit, emit_json


def run():
    base = baseline_production_dlrm()
    searched = dlrm_h(base)
    quality = DlrmQualityModel(base)
    stats = {}
    base_times = None
    for spec in (base, searched):
        times = pipeline_times(simulate(build_graph(spec), TPU_V4))
        if base_times is None:
            base_times = times
        stats[spec.name] = {
            "embedding_norm": times["embedding"] / base_times["step"],
            "dnn_norm": times["dnn"] / base_times["step"],
            "step_norm": times["step"] / base_times["step"],
            "quality": quality.quality(spec),
        }
    table = format_table(
        ["model", "embedding time", "DNN time", "step time = MAX", "quality"],
        [
            [name, r["embedding_norm"], r["dnn_norm"], r["step_norm"], r["quality"]]
            for name, r in stats.items()
        ],
    )
    table += "\n(all times normalized to the baseline step time; paper: DLRM-H step 0.90, quality +0.02%)"
    emit("fig8_dlrm", table)
    emit_json("fig8_dlrm", {"stats": stats})
    return stats


def test_fig8_dlrm(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    base, h = stats["dlrm_baseline"], stats["dlrm_h"]
    # Baseline is MLP-bound: the DNN pipeline dominates the step.
    assert base["dnn_norm"] > base["embedding_norm"]
    # DLRM-H: ~10% step-time gain (paper: 0.90).
    assert 0.80 < h["step_norm"] < 0.95
    # The pipelines end up balanced (embedding slack consumed).
    assert abs(h["dnn_norm"] - h["embedding_norm"]) < abs(
        base["dnn_norm"] - base["embedding_norm"]
    )
    # Quality improves by about the paper's +0.02%.
    assert 0.0 < h["quality"] - base["quality"] < 0.05
